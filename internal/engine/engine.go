// Package engine is the deterministic parallel batch-execution layer for
// simulation and analysis campaigns. It sits between the fine-grained
// parallel verifiers in internal/core and the serving layer in
// cmd/ttdcserve: a Campaign (a declarative grid over construction, n, D,
// (αT, αR), topology, workload, replications) expands into an ordered list
// of Jobs; a worker pool executes them; a JSONL journal records each
// finished job and enables checkpoint/resume.
//
// The determinism contract: given the same job list, the engine produces a
// byte-identical journal (and Report) regardless of the worker count and of
// the order in which workers happen to finish. Three mechanisms enforce it:
//
//   - per-job seeds are derived with stats.DeriveSeed from (campaign seed,
//     job index), never from a shared generator;
//   - job records carry no wall-clock fields — timing lives only in the
//     in-memory progress Snapshot;
//   - the journal writer emits records in strict job-index order, holding
//     out-of-order completions in a pending buffer, so an interrupted
//     journal is always a clean prefix of the uninterrupted one.
package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one unit of work. Run receives a context for cancellation; its
// result must be JSON-marshalable (it becomes the journal record's payload)
// and must depend only on the job's inputs and Seed, never on global state,
// or the determinism contract breaks.
type Job struct {
	// ID names the job in journals, tables, and failure summaries.
	ID string
	// Seed is the job's deterministic seed, recorded in the journal.
	Seed uint64
	// Run computes the job's result.
	Run func(ctx context.Context) (any, error)
}

// Record is one journal line: the outcome of one job. It contains only
// deterministic fields — no timestamps, no durations — so journals are
// byte-identical across runs, worker counts, and resumes.
type Record struct {
	Index  int             `json:"index"`
	ID     string          `json:"id"`
	Seed   uint64          `json:"seed"`
	Status string          `json:"status"` // StatusOK or StatusFail
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// Job outcome statuses.
const (
	StatusOK   = "ok"
	StatusFail = "fail"
)

// Releasable is an optional interface for job results backed by pooled
// buffers. The engine serializes a result into its journal record and then
// never touches it again, so a result implementing Releasable is released
// immediately after a successful marshal; under a worker pool each worker
// then reuses one result buffer for its whole job stream. Results must not
// be retained by the job after Run returns.
type Releasable interface{ Release() }

// Options configures an Engine.
type Options struct {
	// Workers is the worker-pool size; 0 or negative means GOMAXPROCS.
	Workers int
	// Journal, when non-nil, records completed jobs and supplies the
	// finished set for resume: jobs whose index already appears in the
	// journal are not re-executed.
	Journal *Journal
}

// Engine runs one job list through a worker pool. Create one per campaign
// run with New; Run may be called once. Stats is safe to call concurrently
// with Run (it backs TTY progress lines and the ttdcserve /metrics and
// /jobs surfaces).
type Engine struct {
	workers int
	journal *Journal

	total     atomic.Int64
	completed atomic.Int64 // executed, status ok
	failed    atomic.Int64 // executed, status fail
	skipped   atomic.Int64 // replayed from the journal
	inflight  atomic.Int64
	startNS   atomic.Int64

	// now is the injected clock. It feeds only progress reporting
	// (Report.Elapsed, Snapshot.ElapsedSeconds) — never journal bytes —
	// and exists so tests can drive timing deterministically.
	now func() time.Time
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	//lint:ignore walltime single injection point; timing feeds progress output only, never journal bytes
	return &Engine{workers: w, journal: opts.Journal, now: time.Now}
}

// Report is the outcome of a completed (or cancelled) run.
type Report struct {
	// Records holds one record per finished job, in job-index order,
	// including records replayed from the journal. On cancellation it is
	// the finished prefix.
	Records []Record
	// Completed and Failed count executed jobs by status; Skipped counts
	// journal replays.
	Completed, Failed, Skipped int
	// Elapsed is the wall-clock duration of this run.
	Elapsed time.Duration
}

// FailedIDs returns the IDs of records with StatusFail, in index order.
func (r *Report) FailedIDs() []string {
	var ids []string
	for _, rec := range r.Records {
		if rec.Status == StatusFail {
			ids = append(ids, rec.ID)
		}
	}
	return ids
}

// Run executes jobs on the worker pool. It returns when every job has
// finished (possibly with StatusFail — a failing or panicking job fails
// that job, not the campaign) or when ctx is cancelled, in which case it
// returns the finished prefix alongside ctx's error.
func (e *Engine) Run(ctx context.Context, jobs []Job) (*Report, error) {
	start := e.now()
	e.startNS.Store(start.UnixNano())
	e.total.Store(int64(len(jobs)))

	// Resume set: journal records for indices this job list covers. A
	// journal written for a different job list is a caller bug worth
	// failing loudly on, so IDs must match.
	done := make(map[int]Record)
	if e.journal != nil {
		for _, rec := range e.journal.Records() {
			if rec.Index < 0 || rec.Index >= len(jobs) {
				return nil, fmt.Errorf("engine: journal index %d outside job list [0, %d)", rec.Index, len(jobs))
			}
			if rec.ID != jobs[rec.Index].ID {
				return nil, fmt.Errorf("engine: journal record %d is %q, campaign job is %q — wrong journal for this campaign",
					rec.Index, rec.ID, jobs[rec.Index].ID)
			}
			done[rec.Index] = rec
		}
		e.skipped.Store(int64(len(done)))
	}

	results := make(chan Record, e.workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < e.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				idx := int(next.Add(1)) - 1
				if idx >= len(jobs) {
					return
				}
				if _, ok := done[idx]; ok {
					continue // finished in a previous run
				}
				e.inflight.Add(1)
				rec := e.execute(ctx, idx, jobs[idx])
				e.inflight.Add(-1)
				if rec.Status == StatusOK {
					e.completed.Add(1)
				} else {
					e.failed.Add(1)
				}
				results <- rec
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Single writer: emit records in strict index order so the journal is
	// byte-identical whatever the completion order was. Indices already in
	// the journal are replayed into the report without rewriting.
	out := make([]Record, 0, len(jobs))
	pending := make(map[int]Record)
	nextWrite := 0
	var writeErr error
	advance := func() {
		for nextWrite < len(jobs) {
			if rec, ok := done[nextWrite]; ok {
				out = append(out, rec)
				nextWrite++
				continue
			}
			rec, ok := pending[nextWrite]
			if !ok {
				return
			}
			delete(pending, nextWrite)
			if e.journal != nil && writeErr == nil {
				writeErr = e.journal.Append(rec)
			}
			out = append(out, rec)
			nextWrite++
		}
	}
	advance()
	for rec := range results {
		pending[rec.Index] = rec
		advance()
	}
	advance()

	rep := &Report{
		Records:   out,
		Completed: int(e.completed.Load()),
		Failed:    int(e.failed.Load()),
		Skipped:   int(e.skipped.Load()),
		Elapsed:   e.now().Sub(start),
	}
	if writeErr != nil {
		return rep, fmt.Errorf("engine: journal write: %w", writeErr)
	}
	return rep, ctx.Err()
}

// execute runs one job with panic isolation: a panicking job produces a
// StatusFail record for that job instead of tearing down the campaign.
func (e *Engine) execute(ctx context.Context, idx int, job Job) (rec Record) {
	rec = Record{Index: idx, ID: job.ID, Seed: job.Seed}
	defer func() {
		if p := recover(); p != nil {
			rec.Status = StatusFail
			rec.Result = nil
			rec.Error = fmt.Sprintf("panic: %v", p)
		}
	}()
	v, err := job.Run(ctx)
	if err != nil {
		rec.Status = StatusFail
		rec.Error = err.Error()
		return rec
	}
	payload, err := json.Marshal(v)
	if err != nil {
		rec.Status = StatusFail
		rec.Error = fmt.Sprintf("marshal result: %v", err)
		return rec
	}
	if r, ok := v.(Releasable); ok {
		r.Release()
	}
	rec.Status = StatusOK
	rec.Result = payload
	return rec
}
