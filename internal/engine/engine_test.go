package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// testCampaign is small enough to run in milliseconds but crosses several
// grid axes and a randomized topology, so determinism failures (seed
// reuse, order dependence) would show up in its journal bytes.
func testCampaign() *Campaign {
	return &Campaign{
		Name:         "test",
		Construction: "polynomial",
		N:            []int{9, 16},
		D:            []int{2},
		Duty:         []DutyPoint{{}, {AlphaT: 2, AlphaR: 4}},
		Topology:     "geometric",
		Workload:     "saturation",
		Frames:       2,
		Replications: 2,
		Seed:         42,
	}
}

// runToJournal executes the campaign with the given worker count and
// returns the journal bytes.
func runToJournal(t *testing.T, c *Campaign, workers int) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close() //nolint:errcheck // read-only after Run
	jobs, err := Jobs(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := New(Options{Workers: workers, Journal: j}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Completed + rep.Failed; got != len(jobs) {
		t.Fatalf("executed %d of %d jobs", got, len(jobs))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestJournalIdenticalAcrossWorkerCounts(t *testing.T) {
	c := testCampaign()
	serial := runToJournal(t, c, 1)
	if len(serial) == 0 {
		t.Fatal("empty journal")
	}
	for _, workers := range []int{2, 8} {
		parallel := runToJournal(t, c, workers)
		if string(serial) != string(parallel) {
			t.Errorf("workers=%d journal differs from workers=1:\n%s\n--- vs ---\n%s", workers, parallel, serial)
		}
	}
}

func TestReportMatchesJournalOrder(t *testing.T) {
	c := testCampaign()
	jobs, err := Jobs(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := New(Options{Workers: 4}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != len(jobs) {
		t.Fatalf("got %d records, want %d", len(rep.Records), len(jobs))
	}
	for i, rec := range rep.Records {
		if rec.Index != i {
			t.Fatalf("record %d has index %d", i, rec.Index)
		}
		if rec.ID != jobs[i].ID {
			t.Fatalf("record %d is %q, want %q", i, rec.ID, jobs[i].ID)
		}
		if rec.Status != StatusOK {
			t.Fatalf("job %s failed: %s", rec.ID, rec.Error)
		}
	}
}

// TestResumeAfterCancellation kills a run mid-campaign via context
// cancellation, then resumes against the same journal: the resumed run
// must execute only the missing jobs and the final journal must be
// byte-identical to an uninterrupted run's.
func TestResumeAfterCancellation(t *testing.T) {
	c := testCampaign()
	want := runToJournal(t, c, 1)

	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := Jobs(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel once three jobs have finished; workers stop pulling, so the
	// journal ends up a strict prefix.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var finished atomic.Int64
	wrapped := make([]Job, len(jobs))
	for i, job := range jobs {
		job := job
		wrapped[i] = Job{ID: job.ID, Seed: job.Seed, Run: func(ctx context.Context) (any, error) {
			v, err := job.Run(ctx)
			if finished.Add(1) == 3 {
				cancel()
			}
			return v, err
		}}
	}
	rep, err := New(Options{Workers: 2, Journal: j}).Run(ctx, wrapped)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) == len(jobs) {
		t.Fatal("cancellation did not interrupt the campaign; resume path untested")
	}

	// Resume: only the remaining jobs may execute.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close() //nolint:errcheck // read-only after Run
	already := len(j2.Records())
	rep2, err := New(Options{Workers: 2, Journal: j2}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Skipped != already {
		t.Errorf("resume skipped %d jobs, journal had %d", rep2.Skipped, already)
	}
	if got := rep2.Completed + rep2.Failed; got != len(jobs)-already {
		t.Errorf("resume executed %d jobs, want %d", got, len(jobs)-already)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("resumed journal differs from uninterrupted journal:\n%s\n--- vs ---\n%s", got, want)
	}
	// No duplicate indices.
	seen := make(map[int]bool)
	for _, rec := range rep2.Records {
		if seen[rec.Index] {
			t.Fatalf("duplicate record for index %d", rec.Index)
		}
		seen[rec.Index] = true
	}
}

// TestResumeTornTail simulates a kill mid-append: a journal whose last
// line is torn must load as the prefix before it and resume cleanly.
func TestResumeTornTail(t *testing.T) {
	c := testCampaign()
	want := runToJournal(t, c, 1)

	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := Jobs(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Workers: 1, Journal: j}).Run(context.Background(), jobs[:3]); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close() //nolint:errcheck // read-only after Run
	if got := len(j2.Records()); got != 2 {
		t.Fatalf("torn journal loaded %d records, want 2", got)
	}
	if _, err := New(Options{Workers: 4, Journal: j2}).Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("journal after torn-tail resume differs from clean run")
	}
}

// TestJournalMismatchRejected: resuming a different campaign against an
// existing journal must fail loudly, not silently skip wrong jobs.
func TestJournalMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{{ID: "a", Run: func(context.Context) (any, error) { return 1, nil }}}
	if _, err := New(Options{Workers: 1, Journal: j}).Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close() //nolint:errcheck // read-only after Run
	other := []Job{{ID: "b", Run: func(context.Context) (any, error) { return 1, nil }}}
	if _, err := New(Options{Workers: 1, Journal: j2}).Run(context.Background(), other); err == nil {
		t.Fatal("mismatched journal accepted")
	}
}

// TestPanicIsolation: a panicking job fails that job only; every other job
// still runs and the campaign completes.
func TestPanicIsolation(t *testing.T) {
	jobs := make([]Job, 8)
	for i := range jobs {
		i := i
		jobs[i] = Job{ID: fmt.Sprintf("job%d", i), Run: func(context.Context) (any, error) {
			if i == 3 {
				panic("boom")
			}
			return i, nil
		}}
	}
	rep, err := New(Options{Workers: 4}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Completed != 7 {
		t.Fatalf("completed=%d failed=%d, want 7/1", rep.Completed, rep.Failed)
	}
	rec := rep.Records[3]
	if rec.Status != StatusFail || rec.Error != "panic: boom" {
		t.Fatalf("panic record = %+v", rec)
	}
	if ids := rep.FailedIDs(); len(ids) != 1 || ids[0] != "job3" {
		t.Fatalf("FailedIDs = %v", ids)
	}
}

// TestFailingJobDoesNotStopCampaign: infeasible grid points (here D >= n)
// fail their own job and the rest proceed.
func TestFailingJobDoesNotStopCampaign(t *testing.T) {
	c := &Campaign{
		N:        []int{4, 9},
		D:        []int{8}, // infeasible for n=4, fine as a bound for n=9
		Workload: "analysis",
		Seed:     7,
	}
	jobs, err := Jobs(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := New(Options{Workers: 2}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 {
		t.Fatal("expected at least one infeasible job to fail")
	}
	if rep.Completed == 0 {
		t.Fatal("expected feasible jobs to complete despite failures")
	}
}

func TestStatsSnapshot(t *testing.T) {
	c := testCampaign()
	jobs, err := Jobs(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 2})
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Total != int64(len(jobs)) || s.Done != int64(len(jobs)) || s.InFlight != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Line() == "" {
		t.Fatal("empty progress line")
	}
}

// TestInjectedClock pins the clock seam: every timing figure in Report
// and Snapshot flows through Engine.now, so a fake clock that advances
// one second per reading makes progress timing exactly predictable.
func TestInjectedClock(t *testing.T) {
	jobs := []Job{{ID: "one", Run: func(context.Context) (any, error) { return 1, nil }}}
	e := New(Options{Workers: 1})
	base := time.Unix(1_700_000_000, 0)
	var ticks int64
	e.now = func() time.Time {
		return base.Add(time.Duration(atomic.AddInt64(&ticks, 1)) * time.Second)
	}
	rep, err := e.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Run reads the clock twice: once at start, once for Report.Elapsed.
	if rep.Elapsed != time.Second {
		t.Fatalf("Elapsed = %v, want 1s", rep.Elapsed)
	}
	// Stats takes the third reading, two fake seconds after start.
	s := e.Stats()
	if s.ElapsedSeconds != 2 {
		t.Fatalf("ElapsedSeconds = %v, want 2", s.ElapsedSeconds)
	}
	if s.JobsPerSec != 0.5 {
		t.Fatalf("JobsPerSec = %v, want 0.5 (1 job / 2s)", s.JobsPerSec)
	}
}
