package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestExpandOrderAndCount(t *testing.T) {
	c := &Campaign{
		N:            []int{9, 16},
		D:            []int{2, 3},
		Duty:         []DutyPoint{{}, {AlphaT: 2, AlphaR: 4}},
		Replications: 3,
	}
	specs, err := c.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2*2*2*3 {
		t.Fatalf("expanded to %d jobs, want 24", len(specs))
	}
	// n outermost, then D, then duty, then rep.
	if specs[0].N != 9 || specs[0].D != 2 || specs[0].AlphaT != 0 || specs[0].Rep != 0 {
		t.Fatalf("specs[0] = %+v", specs[0])
	}
	if specs[1].Rep != 1 {
		t.Fatalf("specs[1].Rep = %d, want 1", specs[1].Rep)
	}
	if specs[3].AlphaT != 2 || specs[3].AlphaR != 4 {
		t.Fatalf("specs[3] = %+v", specs[3])
	}
	if specs[12].N != 16 {
		t.Fatalf("specs[12].N = %d, want 16", specs[12].N)
	}
	// IDs are unique.
	seen := make(map[string]bool)
	for _, sp := range specs {
		if seen[sp.ID()] {
			t.Fatalf("duplicate job ID %s", sp.ID())
		}
		seen[sp.ID()] = true
	}
}

func TestJobSeedsMatchDeriveSeed(t *testing.T) {
	c := &Campaign{N: []int{9}, D: []int{2}, Replications: 4, Seed: 99}
	jobs, err := Jobs(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, job := range jobs {
		if want := stats.DeriveSeed(99, uint64(i)); job.Seed != want {
			t.Fatalf("job %d seed = %d, want %d", i, job.Seed, want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		c    Campaign
		want string
	}{
		{"no n", Campaign{D: []int{2}}, "at least one n"},
		{"no d", Campaign{N: []int{9}}, "at least one n and one D"},
		{"n too small", Campaign{N: []int{1}, D: []int{2}}, "outside [2"},
		{"n too large", Campaign{N: []int{MaxCampaignN + 1}, D: []int{2}}, "outside [2"},
		{"bad construction", Campaign{Construction: "magic", N: []int{9}, D: []int{2}}, "unknown construction"},
		{"bad topology", Campaign{Topology: "torus", N: []int{9}, D: []int{2}}, "unknown topology"},
		{"bad workload", Campaign{Workload: "ping", N: []int{9}, D: []int{2}}, "unknown workload"},
		{"bad strategy", Campaign{Strategy: "greedy", N: []int{9}, D: []int{2}}, "strategy"},
		{"half duty", Campaign{N: []int{9}, D: []int{2}, Duty: []DutyPoint{{AlphaT: 2}}}, "both caps"},
		{"negative duty", Campaign{N: []int{9}, D: []int{2}, Duty: []DutyPoint{{AlphaT: -1, AlphaR: -1}}}, "negative duty"},
		{"rate", Campaign{N: []int{9}, D: []int{2}, Rate: 2}, "rate"},
		{"frames", Campaign{N: []int{9}, D: []int{2}, Frames: maxFrames + 1}, "frames"},
		{"radius", Campaign{N: []int{9}, D: []int{2}, Radius: 3}, "radius"},
		{"sink", Campaign{N: []int{9}, D: []int{2}, Sink: -1}, "sink"},
		{"replications", Campaign{N: []int{9}, D: []int{2}, Replications: maxReplications + 1}, "replications"},
		{"too many jobs", Campaign{N: make([]int, 300), D: make([]int, 300), Replications: 10}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.name == "too many jobs" {
				for i := range tc.c.N {
					tc.c.N[i] = 9
				}
				for i := range tc.c.D {
					tc.c.D[i] = 2
				}
			}
			err := tc.c.Validate()
			if err == nil {
				t.Fatal("validated")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestDecodeCampaign(t *testing.T) {
	c, err := DecodeCampaign(strings.NewReader(
		`{"name":"demo","n":[9,16],"d":[2],"duty":[{"alphaT":2,"alphaR":4}],"workload":"flood","seed":5}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "demo" || len(c.N) != 2 || c.Workload != "flood" || c.Seed != 5 {
		t.Fatalf("decoded %+v", c)
	}
	if _, err := DecodeCampaign(strings.NewReader(`{"n":[9],"d":[2],"alphaT":[2]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodeCampaign(strings.NewReader(`{`)); err == nil {
		t.Fatal("truncated document accepted")
	}
	if _, err := DecodeCampaign(strings.NewReader(`{"n":[0],"d":[2]}`)); err == nil {
		t.Fatal("out-of-range n accepted")
	}
}

// TestExecuteJobWorkloads smoke-runs each workload once on a tiny class.
func TestExecuteJobWorkloads(t *testing.T) {
	for _, workload := range []string{"analysis", "saturation", "convergecast", "flood"} {
		t.Run(workload, func(t *testing.T) {
			c := &Campaign{N: []int{9}, D: []int{2}, Workload: workload, Frames: 2, Seed: 3}
			specs, err := c.Expand()
			if err != nil {
				t.Fatal(err)
			}
			m, err := ExecuteJob(context.Background(), specs[0], stats.DeriveSeed(3, 0), nil)
			if err != nil {
				t.Fatal(err)
			}
			if m.L <= 0 {
				t.Fatalf("metrics = %+v", m)
			}
			if workload == "analysis" && m.AvgThroughput == "" {
				t.Fatal("analysis produced no throughput")
			}
			if workload == "flood" && m.Covered == 0 {
				t.Fatal("flood covered nobody")
			}
		})
	}
}
