package topology

import (
	"fmt"

	"repro/internal/stats"
)

// Additional deployment shapes used by the experiments: preferential-
// attachment networks with a degree cap (hub-heavy), two-community
// topologies joined by a thin bridge (a convergecast bottleneck), and
// corridor deployments (long thin strips, the pipeline/tunnel-monitoring
// scenario).

// ScaleFreeBounded grows a preferential-attachment (Barabási-Albert style)
// graph with every degree capped at maxDeg: each new node attaches to m
// existing nodes chosen with probability proportional to current degree,
// skipping saturated targets. The result is connected and hub-heavy —
// the adversarial case for degree-bounded schedule classes, since hubs sit
// at the cap. m must be >= 1 and maxDeg > m.
func ScaleFreeBounded(n, m, maxDeg int, rng *stats.RNG) *Graph {
	if n < 2 || m < 1 || maxDeg <= m {
		panic(fmt.Sprintf("topology: ScaleFreeBounded(%d, %d, %d)", n, m, maxDeg))
	}
	g := NewGraph(n)
	// Seed: a small clique-ish core of m+1 nodes.
	for i := 0; i <= m && i < n; i++ {
		for j := 0; j < i; j++ {
			g.AddEdge(i, j)
		}
	}
	// Degree-proportional attachment via a repeated-endpoint list.
	var endpoints []int
	for _, e := range g.Edges() {
		endpoints = append(endpoints, e[0], e[1])
	}
	for v := m + 1; v < n; v++ {
		attached := 0
		for tries := 0; attached < m && tries < 200; tries++ {
			var u int
			if len(endpoints) == 0 {
				u = rng.Intn(v)
			} else {
				u = endpoints[rng.Intn(len(endpoints))]
			}
			if u == v || g.HasEdge(u, v) || g.Degree(u) >= maxDeg || g.Degree(v) >= maxDeg {
				continue
			}
			g.AddEdge(u, v)
			endpoints = append(endpoints, u, v)
			attached++
		}
		if attached == 0 {
			// Fall back to any unsaturated node so the graph stays
			// connected.
			for u := 0; u < v; u++ {
				if g.Degree(u) < maxDeg {
					g.AddEdge(u, v)
					endpoints = append(endpoints, u, v)
					break
				}
			}
		}
	}
	return g
}

// TwoCommunities builds two dense random communities of the given sizes
// joined by exactly `bridges` edges — the classic convergecast bottleneck:
// all cross-community traffic squeezes through the bridge links. Degrees
// stay at most maxDeg.
func TwoCommunities(sizeA, sizeB, bridges, maxDeg int, rng *stats.RNG) *Graph {
	if sizeA < 2 || sizeB < 2 || bridges < 1 || maxDeg < 2 {
		panic(fmt.Sprintf("topology: TwoCommunities(%d, %d, %d, %d)", sizeA, sizeB, bridges, maxDeg))
	}
	n := sizeA + sizeB
	g := NewGraph(n)
	build := func(lo, hi int) {
		// Random connected community: spanning chain + extra edges.
		perm := rng.Perm(hi - lo)
		for i := 0; i+1 < len(perm); i++ {
			g.AddEdge(lo+perm[i], lo+perm[i+1])
		}
		extra := (hi - lo)
		for e := 0; e < extra; e++ {
			u := lo + rng.Intn(hi-lo)
			v := lo + rng.Intn(hi-lo)
			if u != v && !g.HasEdge(u, v) && g.Degree(u) < maxDeg-1 && g.Degree(v) < maxDeg-1 {
				g.AddEdge(u, v)
			}
		}
	}
	build(0, sizeA)
	build(sizeA, n)
	added := 0
	for tries := 0; added < bridges && tries < 100*bridges; tries++ {
		u := rng.Intn(sizeA)
		v := sizeA + rng.Intn(sizeB)
		if !g.HasEdge(u, v) && g.Degree(u) < maxDeg && g.Degree(v) < maxDeg {
			g.AddEdge(u, v)
			added++
		}
	}
	if added == 0 {
		// Guarantee connectivity even in pathological random draws.
		g.AddEdge(0, sizeA)
	}
	return g
}

// Corridor builds a rows×length strip where each node connects to
// neighbours within the same and adjacent columns — the tunnel/pipeline
// monitoring deployment: long diameter, small cross-section. Node (r, c)
// has index c*rows + r.
func Corridor(rows, length int) *Graph {
	if rows < 1 || length < 2 {
		panic(fmt.Sprintf("topology: Corridor(%d, %d)", rows, length))
	}
	g := NewGraph(rows * length)
	id := func(r, c int) int { return c*rows + r }
	for c := 0; c < length; c++ {
		for r := 0; r < rows; r++ {
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < length {
				g.AddEdge(id(r, c), id(r, c+1))
				if r+1 < rows {
					g.AddEdge(id(r, c), id(r+1, c+1))
					g.AddEdge(id(r+1, c), id(r, c+1))
				}
			}
		}
	}
	return g
}
