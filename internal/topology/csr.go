package topology

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/bitset"
)

// DenseLimit is the node count at which the deterministic generators stop
// materializing one n-bit adjacency bitset per node (O(n²) bits — ≈125 GB
// at n=10⁶) and build the compressed sparse-row form instead. Dense graphs
// stay mutable (AddEdge/RemoveEdge/EnforceMaxDegree); compressed graphs are
// immutable. The limit is a variable only so tests can force the CSR path
// at small n; production code must treat it as a constant.
var DenseLimit = 1 << 13

// Compressed sparse rows: nbr[off[u]:off[u+1]] lists u's neighbours in
// strictly increasing order. off has length n+1 with off[0] == 0. The
// arrays are immutable once built and may be shared between clones.

// IsCompressed reports whether the graph uses the immutable CSR
// representation rather than per-node adjacency bitsets.
func (g *Graph) IsCompressed() bool { return g.off != nil }

// newCSR builds a compressed graph on n nodes. row must append node u's
// neighbours (any order, duplicates allowed, self-loops rejected) to buf
// and return it; rows are requested in ascending u order, so generators
// can stream without materializing the whole edge list. Each row is
// sorted and deduplicated in place.
func newCSR(n int, row func(u int, buf []int32) []int32) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("topology: newCSR(%d)", n))
	}
	g := &Graph{n: n, off: make([]int64, n+1)}
	var buf []int32
	for u := 0; u < n; u++ {
		buf = row(u, buf[:0])
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		prev := int32(-1)
		for _, v := range buf {
			if v == prev {
				continue
			}
			if v < 0 || int(v) >= n {
				panic(fmt.Sprintf("topology: CSR neighbour %d out of range [0,%d)", v, n))
			}
			if int(v) == u {
				panic(fmt.Sprintf("topology: self-loop at %d", u))
			}
			g.nbr = append(g.nbr, v)
			prev = v
		}
		g.off[u+1] = int64(len(g.nbr))
	}
	return g
}

// Compress returns the graph in CSR form: the receiver itself if already
// compressed, otherwise an immutable copy with the same edge set. The
// dense original is untouched.
func (g *Graph) Compress() *Graph {
	if g.IsCompressed() {
		return g
	}
	return newCSR(g.n, func(u int, buf []int32) []int32 {
		g.adj[u].ForEach(func(v int) bool {
			buf = append(buf, int32(v))
			return true
		})
		return buf
	})
}

// row returns u's CSR neighbour row. Only valid on compressed graphs.
func (g *Graph) row(u int) []int32 { return g.nbr[g.off[u]:g.off[u+1]] }

// ForEachNeighbor calls fn for each neighbour of x in increasing order,
// stopping early if fn returns false. It is the representation-agnostic
// iteration primitive the simulator kernels use: on compressed graphs it
// walks the CSR row directly; on dense graphs it scans the adjacency
// bitset.
func (g *Graph) ForEachNeighbor(x int, fn func(v int) bool) {
	if g.off != nil {
		for _, v := range g.row(x) {
			if !fn(int(v)) {
				return
			}
		}
		return
	}
	g.adj[x].ForEach(fn)
}

// ForEachNeighborIn calls fn for each neighbour v of x with lo <= v < hi,
// in increasing order, stopping early if fn returns false. Sharded kernels
// use it so a worker that owns the node range [lo, hi) can scatter to only
// its own rows. On compressed graphs the row prefix below lo is skipped by
// binary search; on dense graphs only the words covering [lo, hi) are
// scanned.
func (g *Graph) ForEachNeighborIn(x, lo, hi int, fn func(v int) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > g.n {
		hi = g.n
	}
	if lo >= hi {
		return
	}
	if g.off != nil {
		r := g.row(x)
		i := sort.Search(len(r), func(i int) bool { return int(r[i]) >= lo })
		for ; i < len(r); i++ {
			v := int(r[i])
			if v >= hi {
				return
			}
			if !fn(v) {
				return
			}
		}
		return
	}
	const wordBits = 64
	words := g.adj[x].Words()
	loW, hiW := lo/wordBits, (hi+wordBits-1)/wordBits
	if hiW > len(words) {
		hiW = len(words)
	}
	for wi := loW; wi < hiW; wi++ {
		w := words[wi]
		if wi == loW {
			w &^= (1 << uint(lo%wordBits)) - 1
		}
		if wi == hiW-1 && hi%wordBits != 0 && hi/wordBits == wi {
			w &= (1 << uint(hi%wordBits)) - 1
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// NeighborWords returns x's adjacency row as packed 64-bit words (bit i of
// word w is node 64*w + i) when the graph is dense, and nil when it is
// compressed. The slot kernels use it to fuse role-filtering into word
// ANDs; callers must treat the slice as read-only and fall back to
// NeighborRow when it is nil.
func (g *Graph) NeighborWords(x int) []uint64 {
	if g.off != nil {
		return nil
	}
	return g.adj[x].Words()
}

// NeighborRow returns x's sorted CSR neighbour row when the graph is
// compressed, and nil when it is dense. Callers must treat the slice as
// read-only and fall back to NeighborWords when it is nil.
func (g *Graph) NeighborRow(x int) []int32 {
	if g.off == nil {
		return nil
	}
	return g.row(x)
}

// csrHasEdge reports adjacency by binary search over u's sorted row,
// probing from the lower-degree endpoint.
func (g *Graph) csrHasEdge(u, v int) bool {
	if g.off[u+1]-g.off[u] > g.off[v+1]-g.off[v] {
		u, v = v, u
	}
	r := g.row(u)
	i := sort.Search(len(r), func(i int) bool { return int(r[i]) >= v })
	return i < len(r) && int(r[i]) == v
}

// csrNeighborSet materializes u's row as a fresh bitset. Compressed graphs
// have no per-node bitsets, so unlike the dense path this allocates
// O(n/64) words per call; hot loops should use ForEachNeighbor instead.
func (g *Graph) csrNeighborSet(u int) *bitset.Set {
	s := bitset.New(g.n)
	for _, v := range g.row(u) {
		s.Add(int(v))
	}
	return s
}
