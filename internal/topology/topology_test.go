package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(5)
	if g.N() != 5 || g.EdgeCount() != 0 {
		t.Fatal("empty graph wrong")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge should be undirected")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 || g.Degree(4) != 0 {
		t.Fatal("degrees wrong")
	}
	if g.MaxDegree() != 2 {
		t.Fatal("max degree wrong")
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) {
		t.Fatal("RemoveEdge failed")
	}
	if got := g.EdgeCount(); got != 1 {
		t.Fatalf("EdgeCount = %d", got)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop accepted")
		}
	}()
	NewGraph(3).AddEdge(1, 1)
}

func TestEdgesList(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(2, 0)
	g.AddEdge(3, 1)
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not ordered", e)
		}
	}
}

func TestConnectivity(t *testing.T) {
	g := Line(5)
	if !g.IsConnected() {
		t.Fatal("line should be connected")
	}
	g.RemoveEdge(2, 3)
	if g.IsConnected() {
		t.Fatal("cut line should be disconnected")
	}
	if !NewGraph(1).IsConnected() {
		t.Fatal("singleton should count as connected")
	}
}

func TestBFSTree(t *testing.T) {
	g := Grid(3, 3)
	parent, dist := g.BFSTree(0)
	if parent[0] != 0 || dist[0] != 0 {
		t.Fatal("root wrong")
	}
	if dist[8] != 4 { // opposite corner of a 3x3 grid
		t.Fatalf("dist[8] = %d, want 4", dist[8])
	}
	// Parents always one hop closer.
	for v := 1; v < 9; v++ {
		if !g.HasEdge(v, parent[v]) {
			t.Fatalf("parent of %d not adjacent", v)
		}
		if dist[v] != dist[parent[v]]+1 {
			t.Fatalf("distance of %d inconsistent", v)
		}
	}
	// Unreachable nodes.
	g2 := NewGraph(3)
	g2.AddEdge(0, 1)
	p2, d2 := g2.BFSTree(0)
	if p2[2] != -1 || d2[2] != -1 {
		t.Fatal("unreachable node should have parent/dist -1")
	}
}

func TestRingGridStarLine(t *testing.T) {
	r := Ring(6)
	for i := 0; i < 6; i++ {
		if r.Degree(i) != 2 {
			t.Fatal("ring degree")
		}
	}
	if !r.IsConnected() {
		t.Fatal("ring connectivity")
	}
	s := Star(7)
	if s.Degree(0) != 6 {
		t.Fatal("star centre degree")
	}
	for i := 1; i < 7; i++ {
		if s.Degree(i) != 1 {
			t.Fatal("star leaf degree")
		}
	}
	g := Grid(2, 3)
	if g.EdgeCount() != 7 { // 3 horizontal per row? 2*2 + 3 = 7
		t.Fatalf("grid edges = %d", g.EdgeCount())
	}
	l := Line(4)
	if l.EdgeCount() != 3 || l.MaxDegree() != 2 {
		t.Fatal("line wrong")
	}
}

func TestCirculantAndRegularish(t *testing.T) {
	g := Circulant(8, []int{1, 2})
	for i := 0; i < 8; i++ {
		if g.Degree(i) != 4 {
			t.Fatalf("circulant degree %d at %d", g.Degree(i), i)
		}
	}
	for _, nd := range [][2]int{{8, 2}, {9, 4}, {10, 3}, {12, 5}} {
		r := Regularish(nd[0], nd[1])
		for i := 0; i < nd[0]; i++ {
			if r.Degree(i) != nd[1] {
				t.Fatalf("Regularish(%d,%d): degree %d at node %d", nd[0], nd[1], r.Degree(i), i)
			}
		}
		if !r.IsConnected() {
			t.Fatalf("Regularish(%d,%d) disconnected", nd[0], nd[1])
		}
	}
	// Odd d with odd n is impossible.
	defer func() {
		if recover() == nil {
			t.Fatal("odd-odd Regularish accepted")
		}
	}()
	Regularish(9, 3)
}

func TestRandomGeometric(t *testing.T) {
	rng := stats.NewRNG(42)
	d := RandomGeometric(50, 0.3, rng)
	if d.Graph.N() != 50 {
		t.Fatal("node count")
	}
	// Edges respect the radius.
	for _, e := range d.Graph.Edges() {
		dx, dy := d.X[e[0]]-d.X[e[1]], d.Y[e[0]]-d.Y[e[1]]
		if dx*dx+dy*dy > 0.3*0.3+1e-12 {
			t.Fatalf("edge %v longer than radius", e)
		}
	}
	// All positions in the unit square.
	for i := range d.X {
		if d.X[i] < 0 || d.X[i] > 1 || d.Y[i] < 0 || d.Y[i] > 1 {
			t.Fatal("position out of square")
		}
	}
}

func TestDeploymentStep(t *testing.T) {
	rng := stats.NewRNG(7)
	d := RandomGeometric(30, 0.25, rng)
	before := d.Graph.Edges()
	d.Step(0.1, rng)
	for i := range d.X {
		if d.X[i] < 0 || d.X[i] > 1 || d.Y[i] < 0 || d.Y[i] > 1 {
			t.Fatal("position escaped after Step")
		}
	}
	after := d.Graph.Edges()
	if len(before) == len(after) {
		same := true
		for i := range before {
			if before[i] != after[i] {
				same = false
				break
			}
		}
		if same {
			t.Log("topology unchanged after step (possible but unlikely); not failing")
		}
	}
}

func TestEnforceMaxDegree(t *testing.T) {
	rng := stats.NewRNG(3)
	d := RandomGeometric(60, 0.5, rng) // dense
	g := d.Graph
	if g.MaxDegree() <= 4 {
		t.Skip("random graph unexpectedly sparse")
	}
	g.EnforceMaxDegree(4, rng)
	if g.MaxDegree() > 4 {
		t.Fatalf("max degree %d after enforcement", g.MaxDegree())
	}
}

func TestRandomBoundedDegreeProperties(t *testing.T) {
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 5 + rng.Intn(40)
		d := 2 + rng.Intn(5)
		extra := rng.Intn(n)
		g := RandomBoundedDegree(n, d, extra, rng)
		if g.MaxDegree() > d {
			return false
		}
		return g.IsConnected()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Ring(5)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("Clone shares storage")
	}
}

func BenchmarkRandomGeometric200(b *testing.B) {
	rng := stats.NewRNG(1)
	for i := 0; i < b.N; i++ {
		RandomGeometric(200, 0.15, rng)
	}
}
