// Package topology provides the network-graph substrate for the simulator:
// an undirected graph type, deterministic and random generators matching
// the workloads a WSN paper assumes (rings, grids, unit-disk deployments,
// degree-bounded random networks), breadth-first routing trees, and a
// simple topology-churn model used to demonstrate topology transparency.
package topology

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/stats"
)

// Graph is a simple undirected graph over nodes {0..n-1}. The zero value is
// unusable; create with NewGraph.
type Graph struct {
	n   int
	adj []*bitset.Set
}

// NewGraph returns an empty graph on n nodes.
func NewGraph(n int) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("topology: NewGraph(%d)", n))
	}
	g := &Graph{n: n, adj: make([]*bitset.Set, n)}
	for i := range g.adj {
		g.adj[i] = bitset.New(n)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {u, v}. Self-loops are rejected.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("topology: self-loop at %d", u))
	}
	g.adj[u].Add(v)
	g.adj[v].Add(u)
}

// RemoveEdge deletes the undirected edge {u, v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	g.adj[u].Remove(v)
	g.adj[v].Remove(u)
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.adj[u].Contains(v) }

// Degree returns the degree of node x.
func (g *Graph) Degree(x int) int { return g.adj[x].Count() }

// MaxDegree returns the largest degree in the graph.
func (g *Graph) MaxDegree() int {
	m := 0
	for _, a := range g.adj {
		if c := a.Count(); c > m {
			m = c
		}
	}
	return m
}

// Neighbors returns the neighbours of x in increasing order.
func (g *Graph) Neighbors(x int) []int { return g.adj[x].Elements() }

// NeighborSet returns the neighbour bitset of x; the caller must not
// modify it.
func (g *Graph) NeighborSet(x int) *bitset.Set { return g.adj[x] }

// Edges returns all edges as ordered pairs (u < v).
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		g.adj[u].ForEach(func(v int) bool {
			if v > u {
				out = append(out, [2]int{u, v})
			}
			return true
		})
	}
	return out
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, a := range g.adj {
		total += a.Count()
	}
	return total / 2
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.n)
	for i := range g.adj {
		c.adj[i] = g.adj[i].Clone()
	}
	return c
}

// IsConnected reports whether the graph is connected (true for n == 1).
func (g *Graph) IsConnected() bool {
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g.adj[u].ForEach(func(v int) bool {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
			return true
		})
	}
	return count == g.n
}

// BFSTree returns, for each node, its parent on a breadth-first tree rooted
// at root (parent[root] == root) and its hop distance from root. Nodes
// unreachable from root get parent -1 and distance -1.
func (g *Graph) BFSTree(root int) (parent, dist []int) {
	parent = make([]int, g.n)
	dist = make([]int, g.n)
	for i := range parent {
		parent[i] = -1
		dist[i] = -1
	}
	parent[root] = root
	dist[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.adj[u].ForEach(func(v int) bool {
			if parent[v] == -1 {
				parent[v] = u
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
			return true
		})
	}
	return parent, dist
}

// EnforceMaxDegree removes edges (highest-degree endpoints first) until no
// node exceeds degree d. Removal order is deterministic given the RNG. The
// graph may become disconnected; callers that need connectivity should
// check IsConnected afterwards.
func (g *Graph) EnforceMaxDegree(d int, rng *stats.RNG) {
	if d < 0 {
		panic("topology: negative degree bound")
	}
	for x := 0; x < g.n; x++ {
		for g.Degree(x) > d {
			// Drop the edge to the neighbour with the highest degree,
			// breaking ties randomly, so the trimming spreads.
			nbrs := g.Neighbors(x)
			best := nbrs[0]
			bestDeg := g.Degree(best)
			for _, v := range nbrs[1:] {
				dv := g.Degree(v)
				if dv > bestDeg || (dv == bestDeg && rng.Bool(0.5)) {
					best, bestDeg = v, dv
				}
			}
			g.RemoveEdge(x, best)
		}
	}
}
