// Package topology provides the network-graph substrate for the simulator:
// an undirected graph type, deterministic and random generators matching
// the workloads a WSN paper assumes (rings, grids, unit-disk deployments,
// degree-bounded random networks), breadth-first routing trees, and a
// simple topology-churn model used to demonstrate topology transparency.
package topology

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/stats"
)

// Graph is a simple undirected graph over nodes {0..n-1}. The zero value is
// unusable; create with NewGraph.
//
// A graph is in one of two representations:
//
//   - dense: one n-bit adjacency bitset per node (O(n²) bits), mutable —
//     the representation every graph used before the CSR work;
//   - compressed (CSR): flat sorted neighbour/offset arrays (O(n+m)
//     memory), immutable — what the deterministic generators build above
//     DenseLimit nodes, and what Compress returns.
//
// All queries (Degree, Neighbors, HasEdge, BFSTree, ...) work on both;
// mutators (AddEdge, RemoveEdge, EnforceMaxDegree) panic on compressed
// graphs.
type Graph struct {
	n   int
	adj []*bitset.Set // dense mode; nil when compressed
	off []int64       // CSR row offsets, len n+1; nil when dense
	nbr []int32       // CSR neighbour rows, sorted per node
}

// NewGraph returns an empty graph on n nodes.
func NewGraph(n int) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("topology: NewGraph(%d)", n))
	}
	g := &Graph{n: n, adj: make([]*bitset.Set, n)}
	for i := range g.adj {
		g.adj[i] = bitset.New(n)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// mutable panics unless the graph is in the dense (mutable)
// representation.
func (g *Graph) mutable(op string) {
	if g.off != nil {
		panic(fmt.Sprintf("topology: %s on immutable compressed graph", op))
	}
}

// AddEdge inserts the undirected edge {u, v}. Self-loops are rejected.
// Panics on compressed graphs.
func (g *Graph) AddEdge(u, v int) {
	g.mutable("AddEdge")
	if u == v {
		panic(fmt.Sprintf("topology: self-loop at %d", u))
	}
	g.adj[u].Add(v)
	g.adj[v].Add(u)
}

// RemoveEdge deletes the undirected edge {u, v} if present. Panics on
// compressed graphs.
func (g *Graph) RemoveEdge(u, v int) {
	g.mutable("RemoveEdge")
	g.adj[u].Remove(v)
	g.adj[v].Remove(u)
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if g.off != nil {
		return g.csrHasEdge(u, v)
	}
	return g.adj[u].Contains(v)
}

// Degree returns the degree of node x.
func (g *Graph) Degree(x int) int {
	if g.off != nil {
		return int(g.off[x+1] - g.off[x])
	}
	return g.adj[x].Count()
}

// MaxDegree returns the largest degree in the graph.
func (g *Graph) MaxDegree() int {
	m := 0
	for x := 0; x < g.n; x++ {
		if c := g.Degree(x); c > m {
			m = c
		}
	}
	return m
}

// Neighbors returns the neighbours of x in increasing order.
func (g *Graph) Neighbors(x int) []int {
	if g.off != nil {
		r := g.row(x)
		out := make([]int, len(r))
		for i, v := range r {
			out[i] = int(v)
		}
		return out
	}
	return g.adj[x].Elements()
}

// NeighborSet returns the neighbour bitset of x; the caller must not
// modify it. On compressed graphs the bitset is materialized per call
// (O(n/64) words) — hot loops should use ForEachNeighbor instead, which
// is allocation-free in both representations.
func (g *Graph) NeighborSet(x int) *bitset.Set {
	if g.off != nil {
		return g.csrNeighborSet(x)
	}
	return g.adj[x]
}

// Edges returns all edges as ordered pairs (u < v).
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		g.ForEachNeighbor(u, func(v int) bool {
			if v > u {
				out = append(out, [2]int{u, v})
			}
			return true
		})
	}
	return out
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	if g.off != nil {
		return len(g.nbr) / 2
	}
	total := 0
	for _, a := range g.adj {
		total += a.Count()
	}
	return total / 2
}

// Clone returns a deep copy of the graph. Compressed graphs are immutable,
// so their clone shares the CSR arrays.
func (g *Graph) Clone() *Graph {
	if g.off != nil {
		return &Graph{n: g.n, off: g.off, nbr: g.nbr}
	}
	c := NewGraph(g.n)
	for i := range g.adj {
		c.adj[i] = g.adj[i].Clone()
	}
	return c
}

// IsConnected reports whether the graph is connected (true for n == 1).
func (g *Graph) IsConnected() bool {
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g.ForEachNeighbor(u, func(v int) bool {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
			return true
		})
	}
	return count == g.n
}

// BFSTree returns, for each node, its parent on a breadth-first tree rooted
// at root (parent[root] == root) and its hop distance from root. Nodes
// unreachable from root get parent -1 and distance -1.
func (g *Graph) BFSTree(root int) (parent, dist []int) {
	parent = make([]int, g.n)
	dist = make([]int, g.n)
	for i := range parent {
		parent[i] = -1
		dist[i] = -1
	}
	parent[root] = root
	dist[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.ForEachNeighbor(u, func(v int) bool {
			if parent[v] == -1 {
				parent[v] = u
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
			return true
		})
	}
	return parent, dist
}

// EnforceMaxDegree removes edges (highest-degree endpoints first) until no
// node exceeds degree d. Removal order is deterministic given the RNG. The
// graph may become disconnected; callers that need connectivity should
// check IsConnected afterwards.
func (g *Graph) EnforceMaxDegree(d int, rng *stats.RNG) {
	g.mutable("EnforceMaxDegree")
	if d < 0 {
		panic("topology: negative degree bound")
	}
	for x := 0; x < g.n; x++ {
		for g.Degree(x) > d {
			// Drop the edge to the neighbour with the highest degree,
			// breaking ties randomly, so the trimming spreads.
			nbrs := g.Neighbors(x)
			best := nbrs[0]
			bestDeg := g.Degree(best)
			for _, v := range nbrs[1:] {
				dv := g.Degree(v)
				if dv > bestDeg || (dv == bestDeg && rng.Bool(0.5)) {
					best, bestDeg = v, dv
				}
			}
			g.RemoveEdge(x, best)
		}
	}
}
