package topology

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// The deterministic generators below (Ring, Line, Star, Grid, Circulant,
// Regularish) each have a closed-form neighbour row, so above DenseLimit
// nodes they stream straight into the immutable CSR representation instead
// of materializing n adjacency bitsets. Below the limit they build the
// mutable dense form exactly as before.

// Ring returns the cycle graph on n >= 3 nodes (degree 2 everywhere).
func Ring(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("topology: Ring(%d)", n))
	}
	if n >= DenseLimit {
		return newCSR(n, func(i int, buf []int32) []int32 {
			return append(buf, int32((i+n-1)%n), int32((i+1)%n))
		})
	}
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Line returns the path graph on n >= 2 nodes.
func Line(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("topology: Line(%d)", n))
	}
	if n >= DenseLimit {
		return newCSR(n, func(i int, buf []int32) []int32 {
			if i > 0 {
				buf = append(buf, int32(i-1))
			}
			if i+1 < n {
				buf = append(buf, int32(i+1))
			}
			return buf
		})
	}
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Star returns the star graph on n >= 2 nodes with node 0 at the centre.
func Star(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("topology: Star(%d)", n))
	}
	if n >= DenseLimit {
		return newCSR(n, func(i int, buf []int32) []int32 {
			if i == 0 {
				for v := 1; v < n; v++ {
					buf = append(buf, int32(v))
				}
				return buf
			}
			return append(buf, 0)
		})
	}
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Grid returns the rows×cols 4-neighbour grid graph; node (r, c) has index
// r*cols + c.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic(fmt.Sprintf("topology: Grid(%d, %d)", rows, cols))
	}
	if rows*cols >= DenseLimit {
		return newCSR(rows*cols, func(id int, buf []int32) []int32 {
			r, c := id/cols, id%cols
			if r > 0 {
				buf = append(buf, int32(id-cols))
			}
			if c > 0 {
				buf = append(buf, int32(id-1))
			}
			if c+1 < cols {
				buf = append(buf, int32(id+1))
			}
			if r+1 < rows {
				buf = append(buf, int32(id+cols))
			}
			return buf
		})
	}
	g := NewGraph(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			if c+1 < cols {
				g.AddEdge(id, id+1)
			}
			if r+1 < rows {
				g.AddEdge(id, id+cols)
			}
		}
	}
	return g
}

// Circulant returns the circulant graph on n nodes with the given positive
// offsets: i is adjacent to (i ± o) mod n for each offset o. With offsets
// 1..k it is exactly 2k-regular (for n > 2k) — the deterministic worst-case
// topology in which every node has the maximum degree.
func Circulant(n int, offsets []int) *Graph {
	for _, o := range offsets {
		if o < 1 || 2*o > n {
			panic(fmt.Sprintf("topology: Circulant offset %d invalid for n = %d", o, n))
		}
	}
	if n >= DenseLimit {
		// A diameter offset (2o == n) yields i+o ≡ i-o; newCSR dedups it,
		// matching the dense path where AddEdge is idempotent.
		return newCSR(n, circulantRow(n, offsets))
	}
	g := NewGraph(n)
	for _, o := range offsets {
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+o)%n)
		}
	}
	return g
}

// circulantRow returns the CSR row function for a circulant graph,
// optionally with the diameter matching i↔i+n/2 that Regularish adds for
// odd target degrees.
func circulantRow(n int, offsets []int) func(int, []int32) []int32 {
	return func(i int, buf []int32) []int32 {
		for _, o := range offsets {
			buf = append(buf, int32((i+o)%n), int32((i+n-o)%n))
		}
		return buf
	}
}

// Regularish returns a deterministic near-d-regular graph on n nodes:
// a circulant with offsets 1..⌊d/2⌋, plus the diameter matching i↔i+n/2
// when d is odd and n even. Every node has degree exactly d when
// (d even) or (d odd and n even); otherwise degree d-1 results and the
// function panics so callers don't silently test a weaker worst case.
func Regularish(n, d int) *Graph {
	if d < 2 || d >= n {
		panic(fmt.Sprintf("topology: Regularish(%d, %d)", n, d))
	}
	if d%2 == 1 && n%2 == 1 {
		panic(fmt.Sprintf("topology: no %d-regular graph on %d nodes (nd odd)", d, n))
	}
	offsets := make([]int, 0, d/2)
	for o := 1; o <= d/2; o++ {
		offsets = append(offsets, o)
	}
	var g *Graph
	if n >= DenseLimit {
		base := circulantRow(n, offsets)
		g = newCSR(n, func(i int, buf []int32) []int32 {
			buf = base(i, buf)
			if d%2 == 1 {
				// Diameter matching partner for odd degrees.
				if i < n/2 {
					buf = append(buf, int32(i+n/2))
				} else {
					buf = append(buf, int32(i-n/2))
				}
			}
			return buf
		})
	} else {
		g = Circulant(n, offsets)
		if d%2 == 1 {
			for i := 0; i < n/2; i++ {
				g.AddEdge(i, i+n/2)
			}
		}
	}
	for i := 0; i < n; i++ {
		if g.Degree(i) != d {
			panic(fmt.Sprintf("topology: Regularish degree %d at node %d, want %d", g.Degree(i), i, d))
		}
	}
	return g
}

// Deployment is a set of node positions in the unit square together with
// the graph induced by a communication radius.
type Deployment struct {
	X, Y   []float64
	Radius float64
	Graph  *Graph
}

// RandomGeometric places n nodes uniformly in the unit square and connects
// pairs within the given radius (a unit-disk graph, the standard WSN
// deployment model).
func RandomGeometric(n int, radius float64, rng *stats.RNG) *Deployment {
	if n < 1 || radius <= 0 {
		panic(fmt.Sprintf("topology: RandomGeometric(%d, %v)", n, radius))
	}
	d := &Deployment{
		X:      make([]float64, n),
		Y:      make([]float64, n),
		Radius: radius,
	}
	for i := 0; i < n; i++ {
		d.X[i] = rng.Float64()
		d.Y[i] = rng.Float64()
	}
	d.Graph = d.induce()
	return d
}

func (d *Deployment) induce() *Graph {
	n := len(d.X)
	g := NewGraph(n)
	r2 := d.Radius * d.Radius
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := d.X[i]-d.X[j], d.Y[i]-d.Y[j]
			if dx*dx+dy*dy <= r2 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Step moves every node by a uniform random offset of at most maxStep in
// each coordinate (reflecting at the unit-square borders) and rebuilds the
// induced graph — a simple mobility model for topology-churn experiments.
func (d *Deployment) Step(maxStep float64, rng *stats.RNG) {
	for i := range d.X {
		d.X[i] = reflect01(d.X[i] + (rng.Float64()*2-1)*maxStep)
		d.Y[i] = reflect01(d.Y[i] + (rng.Float64()*2-1)*maxStep)
	}
	d.Graph = d.induce()
}

func reflect01(v float64) float64 {
	v = math.Mod(math.Abs(v), 2)
	if v > 1 {
		v = 2 - v
	}
	return v
}

// RandomBoundedDegree returns a connected random graph on n nodes with
// every degree at most d, built by first linking a random spanning tree
// with degree headroom and then adding random extra edges up to the bound.
// It panics if d < 2 (a degree-1 bound cannot connect n > 2 nodes).
func RandomBoundedDegree(n, d, extraEdges int, rng *stats.RNG) *Graph {
	if n < 2 || d < 2 {
		panic(fmt.Sprintf("topology: RandomBoundedDegree(%d, %d)", n, d))
	}
	g := NewGraph(n)
	// Random spanning tree: attach each node (in random order) to a random
	// already-attached node with spare degree.
	order := rng.Perm(n)
	attached := []int{order[0]}
	for _, v := range order[1:] {
		// Collect candidates with degree < d-1 (leave one slot spare so the
		// tree never locks itself out).
		var candidates []int
		for _, u := range attached {
			if g.Degree(u) < d-1 || (g.Degree(u) < d && len(candidates) == 0) {
				candidates = append(candidates, u)
			}
		}
		u := candidates[rng.Intn(len(candidates))]
		g.AddEdge(u, v)
		attached = append(attached, v)
	}
	// Extra random edges within the degree bound.
	for e := 0; e < extraEdges; e++ {
		for tries := 0; tries < 50; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || g.HasEdge(u, v) || g.Degree(u) >= d || g.Degree(v) >= d {
				continue
			}
			g.AddEdge(u, v)
			break
		}
	}
	return g
}
