package topology

import (
	"reflect"
	"testing"

	"repro/internal/stats"
)

// withDenseLimit lowers the streaming threshold so the deterministic
// generators take the CSR path at test-sized n, restoring it afterwards.
func withDenseLimit(t *testing.T, limit int, fn func()) {
	t.Helper()
	old := DenseLimit
	DenseLimit = limit
	defer func() { DenseLimit = old }()
	fn()
}

// assertGraphsEqual checks that two graphs expose identical edge sets and
// derived queries through the whole public query surface.
func assertGraphsEqual(t *testing.T, name string, dense, csr *Graph) {
	t.Helper()
	if dense.N() != csr.N() {
		t.Fatalf("%s: N %d != %d", name, dense.N(), csr.N())
	}
	if dense.EdgeCount() != csr.EdgeCount() {
		t.Fatalf("%s: EdgeCount %d != %d", name, dense.EdgeCount(), csr.EdgeCount())
	}
	if dense.MaxDegree() != csr.MaxDegree() {
		t.Fatalf("%s: MaxDegree %d != %d", name, dense.MaxDegree(), csr.MaxDegree())
	}
	if !reflect.DeepEqual(dense.Edges(), csr.Edges()) {
		t.Fatalf("%s: Edges differ", name)
	}
	if dense.IsConnected() != csr.IsConnected() {
		t.Fatalf("%s: IsConnected %v != %v", name, dense.IsConnected(), csr.IsConnected())
	}
	n := dense.N()
	for x := 0; x < n; x++ {
		if dense.Degree(x) != csr.Degree(x) {
			t.Fatalf("%s: Degree(%d) %d != %d", name, x, dense.Degree(x), csr.Degree(x))
		}
		dn, cn := dense.Neighbors(x), csr.Neighbors(x)
		if !reflect.DeepEqual(dn, cn) {
			t.Fatalf("%s: Neighbors(%d) %v != %v", name, x, dn, cn)
		}
		var iter []int
		csr.ForEachNeighbor(x, func(v int) bool {
			iter = append(iter, v)
			return true
		})
		if len(dn) == 0 {
			if len(iter) != 0 {
				t.Fatalf("%s: ForEachNeighbor(%d) = %v, want empty", name, x, iter)
			}
		} else if !reflect.DeepEqual(dn, iter) {
			t.Fatalf("%s: ForEachNeighbor(%d) %v != %v", name, x, dn, iter)
		}
		if !dense.NeighborSet(x).Equal(csr.NeighborSet(x)) {
			t.Fatalf("%s: NeighborSet(%d) differs", name, x)
		}
		for v := 0; v < n; v++ {
			if dense.HasEdge(x, v) != csr.HasEdge(x, v) {
				t.Fatalf("%s: HasEdge(%d, %d) %v != %v", name, x, v, dense.HasEdge(x, v), csr.HasEdge(x, v))
			}
		}
	}
	dp, dd := dense.BFSTree(0)
	cp, cd := csr.BFSTree(0)
	if !reflect.DeepEqual(dp, cp) || !reflect.DeepEqual(dd, cd) {
		t.Fatalf("%s: BFSTree differs", name)
	}
}

func TestGeneratorsStreamCSRAboveLimit(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Graph
	}{
		{"ring", func() *Graph { return Ring(37) }},
		{"line", func() *Graph { return Line(31) }},
		{"star", func() *Graph { return Star(29) }},
		{"grid", func() *Graph { return Grid(6, 7) }},
		{"circulant", func() *Graph { return Circulant(24, []int{1, 3, 5}) }},
		{"circulant-diameter", func() *Graph { return Circulant(20, []int{1, 10}) }},
		{"regularish-even", func() *Graph { return Regularish(40, 6) }},
		{"regularish-odd", func() *Graph { return Regularish(40, 5) }},
	}
	for _, tc := range cases {
		dense := tc.build()
		if dense.IsCompressed() {
			t.Fatalf("%s: dense build compressed below limit", tc.name)
		}
		var csr *Graph
		withDenseLimit(t, 2, func() { csr = tc.build() })
		if !csr.IsCompressed() {
			t.Fatalf("%s: build above limit not compressed", tc.name)
		}
		assertGraphsEqual(t, tc.name, dense, csr)
	}
}

func TestCompressMatchesDense(t *testing.T) {
	rng := stats.NewRNG(11)
	graphs := map[string]*Graph{
		"random":    RandomBoundedDegree(33, 5, 20, rng),
		"geometric": RandomGeometric(40, 0.3, rng).Graph,
		"grid":      Grid(5, 8),
	}
	for name, dense := range graphs {
		csr := dense.Compress()
		if !csr.IsCompressed() {
			t.Fatalf("%s: Compress returned dense graph", name)
		}
		assertGraphsEqual(t, name, dense, csr)
		if again := csr.Compress(); again != csr {
			t.Errorf("%s: Compress of compressed graph did not return receiver", name)
		}
		clone := csr.Clone()
		if !clone.IsCompressed() {
			t.Errorf("%s: Clone of compressed graph is dense", name)
		}
		assertGraphsEqual(t, name+"/clone", dense, clone)
	}
}

func TestForEachNeighborIn(t *testing.T) {
	rng := stats.NewRNG(5)
	dense := RandomBoundedDegree(70, 6, 60, rng)
	csr := dense.Compress()
	for _, g := range []*Graph{dense, csr} {
		for _, rg := range [][2]int{{0, 70}, {10, 50}, {63, 65}, {64, 70}, {0, 1}, {40, 40}, {-5, 200}} {
			lo, hi := rg[0], rg[1]
			for x := 0; x < g.N(); x++ {
				var want []int
				for _, v := range dense.Neighbors(x) {
					if v >= lo && v < hi {
						want = append(want, v)
					}
				}
				var got []int
				g.ForEachNeighborIn(x, lo, hi, func(v int) bool {
					got = append(got, v)
					return true
				})
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("compressed=%v ForEachNeighborIn(%d, %d, %d) = %v, want %v",
						g.IsCompressed(), x, lo, hi, got, want)
				}
			}
		}
		// Early stop after the first neighbour.
		var first []int
		g.ForEachNeighborIn(0, 0, g.N(), func(v int) bool {
			first = append(first, v)
			return false
		})
		if len(first) != 1 {
			t.Fatalf("early stop visited %v", first)
		}
	}
}

func TestCompressedGraphMutationPanics(t *testing.T) {
	csr := Grid(4, 4).Compress()
	for name, fn := range map[string]func(){
		"AddEdge":          func() { csr.AddEdge(0, 5) },
		"RemoveEdge":       func() { csr.RemoveEdge(0, 1) },
		"EnforceMaxDegree": func() { csr.EnforceMaxDegree(1, stats.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on compressed graph did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCSRMemoryShape(t *testing.T) {
	// The CSR form must be O(n+m): spot-check the backing array lengths.
	withDenseLimit(t, 2, func() {
		g := Ring(1000)
		if len(g.nbr) != 2000 {
			t.Fatalf("Ring(1000) CSR has %d neighbour entries, want 2000", len(g.nbr))
		}
		if len(g.off) != 1001 {
			t.Fatalf("Ring(1000) CSR has %d offsets, want 1001", len(g.off))
		}
	})
}
