package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestScaleFreeBounded(t *testing.T) {
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 10 + rng.Intn(40)
		m := 1 + rng.Intn(2)
		maxDeg := m + 2 + rng.Intn(5)
		g := ScaleFreeBounded(n, m, maxDeg, rng)
		if g.MaxDegree() > maxDeg {
			return false
		}
		return g.IsConnected()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleFreeIsHubHeavy(t *testing.T) {
	rng := stats.NewRNG(5)
	g := ScaleFreeBounded(60, 1, 10, rng)
	// Preferential attachment should produce at least one node far above
	// the mean degree.
	mean := float64(2*g.EdgeCount()) / float64(g.N())
	if float64(g.MaxDegree()) < 2*mean {
		t.Fatalf("max degree %d not hub-like vs mean %.1f", g.MaxDegree(), mean)
	}
}

func TestScaleFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("maxDeg <= m accepted")
		}
	}()
	ScaleFreeBounded(10, 2, 2, stats.NewRNG(1))
}

func TestTwoCommunities(t *testing.T) {
	rng := stats.NewRNG(3)
	g := TwoCommunities(12, 10, 2, 6, rng)
	if g.N() != 22 {
		t.Fatalf("n = %d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("communities not connected")
	}
	if g.MaxDegree() > 6 {
		t.Fatalf("degree cap violated: %d", g.MaxDegree())
	}
	// Cross edges are few: count them.
	cross := 0
	for _, e := range g.Edges() {
		if (e[0] < 12) != (e[1] < 12) {
			cross++
		}
	}
	if cross < 1 || cross > 4 {
		t.Fatalf("cross edges = %d, want a thin bridge", cross)
	}
}

func TestCorridor(t *testing.T) {
	g := Corridor(2, 10)
	if g.N() != 20 {
		t.Fatalf("n = %d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("corridor disconnected")
	}
	// Long and thin: diameter from one end is close to length.
	_, dist := g.BFSTree(0)
	maxD := 0
	for _, d := range dist {
		if d > maxD {
			maxD = d
		}
	}
	if maxD < 8 {
		t.Fatalf("corridor diameter %d too small", maxD)
	}
	// Degree bounded by the cross-section geometry (<= 7 for rows=2).
	if g.MaxDegree() > 7 {
		t.Fatalf("max degree %d", g.MaxDegree())
	}
	// Single-row corridor degenerates to a line.
	line := Corridor(1, 5)
	if line.EdgeCount() != 4 || line.MaxDegree() != 2 {
		t.Fatal("1-row corridor should be a path")
	}
}
