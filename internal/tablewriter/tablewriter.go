// Package tablewriter renders aligned text tables and CSV for the
// experiment harness, so every table the benchmarks and cmd/ttdcsweep
// regenerate prints in a stable, diffable format.
package tablewriter

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows under a fixed header.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// New creates a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; values are formatted with %v. The row is padded or
// truncated to the header width.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(values) {
			row[i] = formatCell(values[i])
		}
	}
	t.rows = append(t.rows, row)
}

func formatCell(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%.6g", x)
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (RFC-4180 quoting for cells containing
// commas, quotes, or newlines).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
