package tablewriter

import (
	"strings"
	"testing"
)

func TestWriteText(t *testing.T) {
	tab := New("Demo", "n", "D", "thr")
	tab.AddRow(9, 2, 0.123456789)
	tab.AddRow(100, 3, "1/4")
	var b strings.Builder
	if err := tab.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Demo", "n", "thr", "0.123457", "1/4", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
}

func TestShortRowPadded(t *testing.T) {
	tab := New("", "a", "b", "c")
	tab.AddRow(1)
	var b strings.Builder
	if err := tab.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
}

func TestWriteCSV(t *testing.T) {
	tab := New("ignored", "name", "value")
	tab.AddRow("plain", 1)
	tab.AddRow(`with"quote`, "a,b")
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "name,value\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Fatalf("quote escaping wrong: %q", out)
	}
	if !strings.Contains(out, `"a,b"`) {
		t.Fatalf("comma quoting wrong: %q", out)
	}
}

func TestStringerCell(t *testing.T) {
	tab := New("", "x")
	tab.AddRow(strings.NewReplacer()) // not a Stringer; uses %v
	tab.AddRow(testStringer{})
	var b strings.Builder
	if err := tab.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "STR") {
		t.Fatal("Stringer not used")
	}
}

type testStringer struct{}

func (testStringer) String() string { return "STR" }
