package plan

import (
	"math/big"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestBestUnconstrainedMaximizesLifetime(t *testing.T) {
	p, err := Best(Requirements{MaxNodes: 25, MaxDegree: 2})
	if err != nil {
		t.Fatal(err)
	}
	// With no constraints the planner should pick a deeply duty-cycled
	// schedule (longest lifetime), not the non-sleeping base.
	if p.AlphaT == 0 {
		t.Fatalf("unconstrained planner picked non-sleeping %s", p.Base)
	}
	if p.ActiveFraction >= 1 {
		t.Fatal("picked schedule does not sleep")
	}
	if !core.IsTopologyTransparent(p.Schedule, 2) {
		t.Fatal("picked schedule not TT")
	}
	if p.LifetimeYears <= 0 || p.HopLatencySeconds <= 0 {
		t.Fatalf("metrics missing: %+v", p)
	}
	if len(p.Rationale) == 0 {
		t.Fatal("no rationale")
	}
}

func TestLatencyConstraintBinds(t *testing.T) {
	// A tight latency cap must force a shorter frame (less sleep) than the
	// unconstrained choice.
	loose, err := Best(Requirements{MaxNodes: 25, MaxDegree: 2})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Best(Requirements{MaxNodes: 25, MaxDegree: 2, MaxHopLatencySeconds: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if tight.HopLatencySeconds > 0.5 {
		t.Fatalf("latency cap violated: %.3f", tight.HopLatencySeconds)
	}
	if tight.Schedule.L() >= loose.Schedule.L() {
		t.Fatalf("tight latency should shorten the frame: %d vs %d",
			tight.Schedule.L(), loose.Schedule.L())
	}
	if tight.LifetimeYears > loose.LifetimeYears {
		t.Fatal("constraint cannot improve the objective")
	}
}

func TestLifetimeConstraintBinds(t *testing.T) {
	// Demand a lifetime only deep duty cycling can reach.
	p, err := Best(Requirements{MaxNodes: 25, MaxDegree: 2, MinLifetimeYears: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if p.LifetimeYears < 0.05 {
		t.Fatalf("lifetime floor violated: %.3f", p.LifetimeYears)
	}
	if p.AlphaT == 0 {
		t.Fatal("lifetime floor requires duty cycling")
	}
}

func TestThroughputConstraintBinds(t *testing.T) {
	p, err := Best(Requirements{MaxNodes: 25, MaxDegree: 2, MinAvgThroughput: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if p.AvgThroughput.Cmp(big.NewRat(1, 10)) < 0 {
		t.Fatalf("throughput floor violated: %s", p.AvgThroughput.RatString())
	}
}

func TestInfeasibleReportsBindingConstraint(t *testing.T) {
	// A lifetime demand beyond physics must fail with a clear reason.
	_, err := Best(Requirements{MaxNodes: 25, MaxDegree: 2, MinLifetimeYears: 1000})
	if err == nil {
		t.Fatal("impossible lifetime accepted")
	}
	if !strings.Contains(err.Error(), "lifetime") {
		t.Fatalf("error does not name the binding constraint: %v", err)
	}
	// Contradictory demands: sub-slot latency.
	_, err = Best(Requirements{MaxNodes: 25, MaxDegree: 2, MaxHopLatencySeconds: 0.001})
	if err == nil {
		t.Fatal("impossible latency accepted")
	}
}

func TestSteinerConsideredForD2(t *testing.T) {
	// For D=2 with a tight latency budget and modest n, Steiner's short
	// frames should be in play; at minimum the planner must succeed and
	// respect the cap.
	p, err := Best(Requirements{MaxNodes: 13, MaxDegree: 2, MaxHopLatencySeconds: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if p.HopLatencySeconds > 0.2 {
		t.Fatalf("latency cap violated: %v", p.HopLatencySeconds)
	}
}

func TestBalancedRequest(t *testing.T) {
	p, err := Best(Requirements{MaxNodes: 12, MaxDegree: 3, Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.AlphaT == 0 {
		t.Skip("planner picked non-sleeping; balance not exercised")
	}
	// Balanced division: per-node activity within small spread for the
	// TDMA base (the likely winner at n=12, D=3).
	s := p.Schedule
	min, max := s.L()*2, 0
	for x := 0; x < s.N(); x++ {
		act := s.Tran(x).Count() + s.Recv(x).Count()
		if act < min {
			min = act
		}
		if act > max {
			max = act
		}
	}
	if max-min > max/2+2 {
		t.Fatalf("balanced plan has spread %d..%d", min, max)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Best(Requirements{MaxNodes: 2, MaxDegree: 1}); err == nil {
		t.Fatal("degenerate class accepted")
	}
	if _, err := Best(Requirements{MaxNodes: 10, MaxDegree: 10}); err == nil {
		t.Fatal("D=n accepted")
	}
	if _, err := Best(Requirements{MaxNodes: 10, MaxDegree: 2,
		Energy: sim.EnergyModel{TxPower: 1}}); err == nil {
		t.Fatal("zero slot duration accepted")
	}
}

func TestLargeClassUsesBoundsNotScans(t *testing.T) {
	// n beyond the exact-scan limit must still plan quickly using the L-1
	// latency bound.
	p, err := Best(Requirements{MaxNodes: 121, MaxDegree: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Schedule.N() != 121 {
		t.Fatalf("n = %d", p.Schedule.N())
	}
	found := false
	for _, r := range p.Rationale {
		if strings.Contains(r, "exact-scan limit") {
			found = true
		}
	}
	if !found {
		t.Fatal("large-class rationale missing")
	}
}
