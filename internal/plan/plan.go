// Package plan turns application requirements into a concrete
// topology-transparent duty-cycling schedule. It searches the construction
// space the library offers — base cover-free family × (αT, αR) caps ×
// division strategy — and returns the candidate that maximizes projected
// battery lifetime subject to worst-case hop-latency and throughput
// constraints, with a rationale a deployment engineer can review.
//
// This is the orchestration layer the paper leaves implicit: §1 frames
// αT/αR as "parameters that capture applications' requirement on energy
// efficiency"; Best makes that mapping executable.
package plan

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/cff"
	"repro/internal/combin"
	"repro/internal/core"
	"repro/internal/sim"
)

// Requirements captures what the deployment needs. Zero values mean
// "unconstrained" (except the class parameters, which are mandatory).
type Requirements struct {
	// MaxNodes and MaxDegree define the network class N(n, D).
	MaxNodes, MaxDegree int
	// MaxHopLatencySeconds caps the worst-case wait for a guaranteed
	// collision-free slot on any hop (0 = unconstrained).
	MaxHopLatencySeconds float64
	// MinLifetimeYears floors the projected first-death lifetime under
	// saturated traffic (0 = unconstrained).
	MinLifetimeYears float64
	// MinAvgThroughput floors the average worst-case throughput
	// (0 = unconstrained).
	MinAvgThroughput float64
	// BatteryJoules sizes the lifetime projection; 0 means 20000 J.
	BatteryJoules float64
	// Energy is the radio model; the zero value means sim.DefaultEnergy.
	Energy sim.EnergyModel
	// Balanced requests the §7 balanced-energy division for constructed
	// schedules.
	Balanced bool
}

// Plan is a chosen schedule with its projected figures of merit.
type Plan struct {
	// Schedule is the chosen schedule.
	Schedule *core.Schedule
	// Base names the underlying cover-free construction.
	Base string
	// AlphaT and AlphaR are the duty-cycling caps; (0, 0) means the base
	// non-sleeping schedule was chosen.
	AlphaT, AlphaR int
	// HopLatencySeconds is the worst-case guaranteed-slot wait.
	HopLatencySeconds float64
	// LifetimeYears is the projected first-death lifetime.
	LifetimeYears float64
	// AvgThroughput and MinThroughput are the exact analysis figures.
	AvgThroughput, MinThroughput *big.Rat
	// ActiveFraction is the schedule's awake fraction (energy proxy).
	ActiveFraction float64
	// Rationale explains the choice and the rejected constraints.
	Rationale []string
}

const yearSeconds = 365.25 * 24 * 3600

// Best searches the candidate space and returns the feasible plan with the
// longest projected lifetime (ties broken toward higher minimum
// throughput). It returns an error describing the binding constraint when
// nothing is feasible.
func Best(req Requirements) (*Plan, error) {
	n, d := req.MaxNodes, req.MaxDegree
	if n < 3 || d < 1 || d > n-1 {
		return nil, fmt.Errorf("plan: class N(%d, %d) invalid", n, d)
	}
	em := req.Energy
	if em == (sim.EnergyModel{}) {
		em = sim.DefaultEnergy()
	}
	if em.SlotSeconds <= 0 {
		return nil, fmt.Errorf("plan: energy model has no slot duration")
	}
	battery := req.BatteryJoules
	if battery == 0 {
		battery = 20000
	}

	bases, err := candidateBases(n, d)
	if err != nil {
		return nil, err
	}
	var feasible []*Plan
	var closest *Plan // best-lifetime candidate ignoring feasibility
	var closestWhy string
	for _, base := range bases {
		for _, caps := range candidateCaps(n, d) {
			s := base.s
			alphaT, alphaR := 0, 0
			if caps[0] > 0 {
				alphaT, alphaR = caps[0], caps[1]
				if alphaT+alphaR > n {
					continue
				}
				strategy := core.Sequential
				if req.Balanced {
					strategy = core.Balanced
				}
				var err error
				s, err = core.Construct(base.s, core.ConstructOptions{
					AlphaT: alphaT, AlphaR: alphaR, D: d, Strategy: strategy,
				})
				if err != nil {
					continue
				}
			}
			p, why := evaluate(s, base.name, alphaT, alphaR, n, d, em, battery, req)
			if why == "" {
				feasible = append(feasible, p)
			} else if closest == nil || p.LifetimeYears > closest.LifetimeYears {
				closest, closestWhy = p, why
			}
		}
	}
	if len(feasible) == 0 {
		if closest != nil {
			return nil, fmt.Errorf("plan: no feasible schedule; best infeasible candidate %s(%d,%d) fails: %s",
				closest.Base, closest.AlphaT, closest.AlphaR, closestWhy)
		}
		return nil, fmt.Errorf("plan: no candidate schedules for N(%d, %d)", n, d)
	}
	sort.Slice(feasible, func(i, j int) bool {
		if feasible[i].LifetimeYears != feasible[j].LifetimeYears {
			return feasible[i].LifetimeYears > feasible[j].LifetimeYears
		}
		return feasible[i].MinThroughput.Cmp(feasible[j].MinThroughput) > 0
	})
	best := feasible[0]
	best.Rationale = append(best.Rationale,
		fmt.Sprintf("chose %s with caps (%d, %d): %.2f y projected lifetime, %.3f s worst hop wait, Thr^min %s",
			best.Base, best.AlphaT, best.AlphaR, best.LifetimeYears,
			best.HopLatencySeconds, best.MinThroughput.RatString()),
		fmt.Sprintf("%d candidate(s) were feasible; lifetime was the objective, min-throughput the tie-break", len(feasible)),
	)
	return best, nil
}

type baseCandidate struct {
	name string
	s    *core.Schedule
}

// candidateBases builds the non-sleeping bases available for the class.
func candidateBases(n, d int) ([]baseCandidate, error) {
	var out []baseCandidate
	if fam, err := cff.Identity(n); err == nil {
		if s, err := core.ScheduleFromFamily(fam.L, fam.Sets); err == nil {
			out = append(out, baseCandidate{"tdma", s})
		}
	}
	if fam, err := cff.PolynomialFor(n, d); err == nil {
		if s, err := core.ScheduleFromFamily(fam.L, fam.Sets); err == nil {
			out = append(out, baseCandidate{"polynomial", s})
		}
	}
	if d == 2 {
		if fam, err := cff.Steiner(n); err == nil {
			if s, err := core.ScheduleFromFamily(fam.L, fam.Sets); err == nil {
				out = append(out, baseCandidate{"steiner", s})
			}
		}
	}
	if fam, err := cff.ProjectiveFor(n, d); err == nil {
		if s, err := core.ScheduleFromFamily(fam.L, fam.Sets); err == nil {
			out = append(out, baseCandidate{"projective", s})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("plan: no construction available for N(%d, %d)", n, d)
	}
	return out, nil
}

// candidateCaps enumerates (αT, αR) pairs to try; (0, 0) means "keep the
// non-sleeping base".
func candidateCaps(n, d int) [][2]int {
	out := [][2]int{{0, 0}}
	aStarGen := core.OptimalTransmitters(n, d)
	seen := map[[2]int]bool{}
	for _, alphaT := range []int{1, 2, 3, aStarGen} {
		if alphaT < 1 {
			continue
		}
		for _, mult := range []int{1, 2, 4} {
			alphaR := alphaT * mult
			if alphaR < 1 || alphaT+alphaR > n {
				continue
			}
			c := [2]int{alphaT, alphaR}
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// latencyExactScanLimit bounds the exhaustive worst-case-latency scan; for
// larger classes the valid upper bound L-1 is used instead.
const latencyExactScanLimit = 26

// evaluate scores one candidate; why == "" means feasible.
func evaluate(s *core.Schedule, base string, alphaT, alphaR, n, d int,
	em sim.EnergyModel, battery float64, req Requirements) (*Plan, string) {
	p := &Plan{
		Schedule:       s,
		Base:           base,
		AlphaT:         alphaT,
		AlphaR:         alphaR,
		AvgThroughput:  core.AvgThroughput(s, d),
		ActiveFraction: s.ActiveFraction(),
	}
	// Latency: exact scan for small classes, L-1 upper bound otherwise
	// (valid for every TT schedule, per core.WorstCaseHopLatency).
	latSlots := s.L() - 1
	if n <= latencyExactScanLimit {
		if exact, ok := core.WorstCaseHopLatency(s, d); ok {
			latSlots = exact
		} else {
			return p, "not topology-transparent"
		}
		p.MinThroughput = core.MinThroughput(s, d)
	} else {
		// Trust the construction's guarantee (Theorem 6) without the
		// exponential scan; report the Theorem 9 style floor.
		p.MinThroughput = big.NewRat(1, int64(s.L()))
		p.Rationale = append(p.Rationale,
			fmt.Sprintf("n=%d exceeds the exact-scan limit; using L-1 latency bound and 1/L throughput floor", n))
	}
	p.HopLatencySeconds = float64(latSlots) * em.SlotSeconds
	est, err := sim.EstimateLifetime(s, em, battery)
	if err != nil {
		return p, err.Error()
	}
	p.LifetimeYears = est.MinSeconds / yearSeconds

	if req.MaxHopLatencySeconds > 0 && p.HopLatencySeconds > req.MaxHopLatencySeconds {
		return p, fmt.Sprintf("hop latency %.3f s exceeds cap %.3f s",
			p.HopLatencySeconds, req.MaxHopLatencySeconds)
	}
	if req.MinLifetimeYears > 0 && p.LifetimeYears < req.MinLifetimeYears {
		return p, fmt.Sprintf("lifetime %.2f y below floor %.2f y",
			p.LifetimeYears, req.MinLifetimeYears)
	}
	if req.MinAvgThroughput > 0 {
		// Compare exactly: SetFloat64 lifts the float floor into the
		// rational domain instead of rounding the exact figure down to it.
		floor := new(big.Rat).SetFloat64(req.MinAvgThroughput)
		if floor != nil && p.AvgThroughput.Cmp(floor) < 0 {
			return p, fmt.Sprintf("Thr^ave %.6f below floor %.6f",
				combin.RatFloat(p.AvgThroughput), req.MinAvgThroughput)
		}
	}
	return p, ""
}
