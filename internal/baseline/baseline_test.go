package baseline

import (
	"testing"

	"repro/internal/cff"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

func TestColoringTDMAIsProper(t *testing.T) {
	for _, g := range []*topology.Graph{
		topology.Ring(7),
		topology.Grid(3, 4),
		topology.Star(8),
		topology.RandomBoundedDegree(20, 4, 10, stats.NewRNG(1)),
	} {
		s, err := ColoringTDMA(g)
		if err != nil {
			t.Fatal(err)
		}
		if !s.IsNonSleeping() {
			t.Fatal("coloring TDMA should be non-sleeping")
		}
		// Each node transmits in exactly one slot.
		for v := 0; v < g.N(); v++ {
			if s.Tran(v).Count() != 1 {
				t.Fatalf("node %d transmits %d times", v, s.Tran(v).Count())
			}
		}
		// Distance-2 separation: co-slot nodes are neither adjacent nor
		// share a neighbour.
		for i := 0; i < s.L(); i++ {
			slot := s.T(i).Elements()
			for a := 0; a < len(slot); a++ {
				for b := a + 1; b < len(slot); b++ {
					u, v := slot[a], slot[b]
					if g.HasEdge(u, v) {
						t.Fatalf("adjacent nodes %d,%d share slot %d", u, v, i)
					}
					if g.NeighborSet(u).Intersects(g.NeighborSet(v)) {
						t.Fatalf("distance-2 nodes %d,%d share slot %d", u, v, i)
					}
				}
			}
		}
	}
}

func TestColoringTDMACollisionFreeOnOwnGraph(t *testing.T) {
	g := topology.Grid(4, 4)
	s, err := ColoringTDMA(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunSaturation(g, s, 2, sim.DefaultEnergy())
	if err != nil {
		t.Fatal(err)
	}
	if res.CollisionSlots != 0 {
		t.Fatalf("coloring TDMA collided %d times on its own graph", res.CollisionSlots)
	}
	if res.MinLinkPerFrame < 1 {
		t.Fatalf("some link starved: %v", res.MinLinkPerFrame)
	}
}

func TestColoringTDMAShorterThanClassTDMA(t *testing.T) {
	// The whole point of topology knowledge: far fewer slots than n.
	g := topology.Grid(5, 5)
	s, err := ColoringTDMA(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.L() >= g.N() {
		t.Fatalf("coloring frame %d not shorter than n = %d", s.L(), g.N())
	}
}

func TestColoringTDMABreaksUnderChurn(t *testing.T) {
	// Build for one unit-disk deployment, run on a moved one: links can
	// starve. (This is E11's core claim; here we only assert the mechanism
	// can be observed — a moved topology with a starved link exists.)
	rng := stats.NewRNG(9)
	dep := topology.RandomGeometric(25, 0.35, rng)
	dep.Graph.EnforceMaxDegree(5, rng)
	s, err := ColoringTDMA(dep.Graph)
	if err != nil {
		t.Fatal(err)
	}
	starvedSomewhere := false
	for trial := 0; trial < 20 && !starvedSomewhere; trial++ {
		dep.Step(0.15, rng)
		moved := dep.Graph.Clone()
		moved.EnforceMaxDegree(5, rng)
		if moved.EdgeCount() == 0 {
			continue
		}
		res, err := sim.RunSaturation(moved, s, 1, sim.DefaultEnergy())
		if err != nil {
			t.Fatal(err)
		}
		if res.MinLinkPerFrame == 0 {
			starvedSomewhere = true
		}
	}
	if !starvedSomewhere {
		t.Fatal("coloring TDMA never starved a link across 20 random churn steps")
	}
}

func TestRandomDutyCycle(t *testing.T) {
	rng := stats.NewRNG(4)
	s, err := RandomDutyCycle(10, 20, 0.2, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 10 || s.L() != 20 {
		t.Fatalf("shape %d/%d", s.N(), s.L())
	}
	if s.ActiveFraction() >= 1 {
		t.Fatal("random duty cycle should sleep someone")
	}
	// Errors on bad input.
	if _, err := RandomDutyCycle(0, 5, 0.1, 0.1, rng); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := RandomDutyCycle(5, 5, 1.5, 0.1, rng); err == nil {
		t.Fatal("p>1 accepted")
	}
}

func TestSymmetricConstruction(t *testing.T) {
	fam, err := cff.PolynomialFor(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := core.ScheduleFromFamily(fam.L, fam.Sets)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Symmetric(ns, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsAlphaSchedule(3, 3) {
		t.Fatal("not a (3,3)-schedule")
	}
	if w := core.CheckRequirement3(s, 2); w != nil {
		t.Fatalf("symmetric schedule not TT: %v", w)
	}
	// Every slot has exactly alpha receivers (construction pads).
	for i := 0; i < s.L(); i++ {
		if s.R(i).Count() != 3 {
			t.Fatalf("slot %d receivers = %d", i, s.R(i).Count())
		}
	}
}
