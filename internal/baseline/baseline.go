// Package baseline implements the comparison schemes the paper's related
// work positions topology-transparent duty cycling against:
//
//   - ColoringTDMA: a topology-DEPENDENT schedule built by greedy distance-2
//     coloring of a known graph. Collision-free and short-framed on the
//     topology it was built for, but its guarantees evaporate when the
//     topology changes — the foil for topology transparency.
//   - RandomDutyCycle: uncoordinated random sleeping (in the spirit of
//     Dousse-Mannersalo-Thiran), which saves energy but guarantees nothing.
//   - Symmetric: the (α, α)-schedule special case studied by
//     Dukes-Colbourn-Syrotiuk [6], obtained here by running the paper's
//     Construct with αT = αR.
package baseline

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/topology"
)

// ColoringTDMA builds a topology-dependent TDMA schedule for the given
// graph: nodes are greedily assigned colors such that no two nodes within
// distance 2 share a color (the standard broadcast-scheduling constraint —
// distance-2 separation prevents both direct and hidden-terminal
// collisions), then slot c carries T[c] = {nodes with color c} and
// R[c] = everyone else.
//
// On the graph it was built for, every transmission is collision-free and
// each node transmits once per frame; the frame length is the number of
// colors used (at most Δ² + 1 by the greedy bound, often far fewer). On a
// different graph all bets are off — which experiment E11 demonstrates.
func ColoringTDMA(g *topology.Graph) (*core.Schedule, error) {
	n := g.N()
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	numColors := 0
	forbidden := bitset.New(n + 1)
	for v := 0; v < n; v++ {
		forbidden.Clear()
		// Colors of all nodes within distance 2.
		g.NeighborSet(v).ForEach(func(u int) bool {
			if colors[u] >= 0 {
				forbidden.Add(colors[u])
			}
			g.NeighborSet(u).ForEach(func(w int) bool {
				if w != v && colors[w] >= 0 {
					forbidden.Add(colors[w])
				}
				return true
			})
			return true
		})
		c := 0
		for forbidden.Contains(c) {
			c++
		}
		colors[v] = c
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	t := make([][]int, numColors)
	for v, c := range colors {
		t[c] = append(t[c], v)
	}
	s, err := core.NonSleeping(n, t)
	if err != nil {
		return nil, fmt.Errorf("baseline: coloring TDMA: %w", err)
	}
	return s, nil
}

// RandomDutyCycle builds an uncoordinated random schedule of frame length
// l: each node independently transmits with probability pTx and otherwise
// listens with probability pRx in each slot (sleeping the rest of the
// time). No topology-transparency or connectivity guarantee exists; the
// experiments use it to show what coordination buys.
func RandomDutyCycle(n, l int, pTx, pRx float64, rng *stats.RNG) (*core.Schedule, error) {
	if n < 1 || l < 1 {
		return nil, fmt.Errorf("baseline: RandomDutyCycle(n=%d, l=%d)", n, l)
	}
	if pTx < 0 || pRx < 0 || pTx > 1 || pRx > 1 {
		return nil, fmt.Errorf("baseline: probabilities out of range")
	}
	t := make([]*bitset.Set, l)
	r := make([]*bitset.Set, l)
	for i := 0; i < l; i++ {
		t[i] = bitset.New(n)
		r[i] = bitset.New(n)
		for x := 0; x < n; x++ {
			if rng.Bool(pTx) {
				t[i].Add(x)
			} else if rng.Bool(pRx) {
				r[i].Add(x)
			}
		}
	}
	return core.FromSets(n, t, r)
}

// Symmetric builds the (α, α)-schedule of Dukes-Colbourn-Syrotiuk's
// setting from a topology-transparent non-sleeping schedule, using the
// paper's Construct with equal transmitter and receiver caps. The paper
// notes such schedules are the right choice when transmitting and
// receiving cost the same order of magnitude.
func Symmetric(ns *core.Schedule, d, alpha int) (*core.Schedule, error) {
	return core.Construct(ns, core.ConstructOptions{
		AlphaT: alpha,
		AlphaR: alpha,
		D:      d,
	})
}
