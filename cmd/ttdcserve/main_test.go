package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-nope"}, &out, &errb); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-peers", "http://a,http://b"}, &out, &errb); err == nil {
		t.Fatal("-peers without -self accepted")
	}
	if err := run(context.Background(), []string{"-warm", "9-2"}, &out, &errb); err == nil {
		t.Fatal("malformed -warm accepted")
	}
	if err := run(context.Background(), []string{"-warm", "2:9"}, &out, &errb); err == nil {
		t.Fatal("infeasible warm class accepted")
	}
}

func TestParseClasses(t *testing.T) {
	cs, err := parseClasses("9:2,25:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].N != 9 || cs[0].D != 2 || cs[1].N != 25 || cs[1].D != 3 {
		t.Fatalf("parseClasses = %+v", cs)
	}
	for _, bad := range []string{"", "9", "9:2:3", "x:2", "9:y"} {
		if _, err := parseClasses(bad); err == nil {
			t.Errorf("parseClasses(%q) accepted", bad)
		}
	}
}

// syncBuffer lets the test read stdout while run's goroutine writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunGracefulShutdown boots the real server on an ephemeral port with
// a background warmer, serves a request, submits a campaign, then cancels
// the context (the SIGINT path): run must drain and return nil.
func TestRunGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-cache", "32", "-grace", "5s",
			"-warm", "9:2", "-warm-alpha-t", "2", "-warm-alpha-r", "2",
		}, &out, io.Discard)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s := out.String(); strings.Contains(s, "listening on ") {
			rest := s[strings.Index(s, "listening on ")+len("listening on "):]
			addr = strings.Fields(rest)[0]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server never reported its listen address")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/schedule?n=9&D=2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // test
	resp.Body.Close()              //nolint:errcheck // test
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule status %d", resp.StatusCode)
	}

	// Leave a campaign in flight so shutdown actually has to drain.
	jresp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"n":[9,16],"d":[2],"duty":[{"alphaT":2,"alphaR":4}],"workload":"flood","frames":20,"seed":5}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, jresp.Body) //nolint:errcheck // test
	jresp.Body.Close()              //nolint:errcheck // test
	if jresp.StatusCode != http.StatusAccepted {
		t.Fatalf("jobs status %d", jresp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("no shutdown log: %q", out.String())
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
