package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	ttdc "repro"
	"repro/internal/schedcache"
)

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec, body
}

func TestScheduleEndpoint(t *testing.T) {
	cache := schedcache.New(16)
	h := Handler(cache)
	rec, body := get(t, h, "/schedule?n=25&D=2&alphaT=3&alphaR=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp scheduleResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if resp.N != 25 || resp.D != 2 || resp.AlphaT != 3 || resp.AlphaR != 5 || resp.Strategy != "sequential" {
		t.Fatalf("request echo wrong: %+v", resp)
	}
	// The embedded schedule must be the DecodeSchedule wire format.
	s, err := ttdc.DecodeSchedule(bytes.NewReader(resp.Schedule))
	if err != nil {
		t.Fatalf("embedded schedule does not decode: %v", err)
	}
	if s.N() != 25 || s.L() != resp.L {
		t.Fatalf("embedded schedule shape n=%d L=%d vs l=%d", s.N(), s.L(), resp.L)
	}
	if !s.IsAlphaSchedule(3, 5) || !ttdc.IsTopologyTransparent(s, 2) {
		t.Fatal("served schedule violates caps or topology transparency")
	}
	if got := s.ActiveFraction(); got != resp.ActiveFraction {
		t.Fatalf("activeFraction %v vs %v", resp.ActiveFraction, got)
	}
	want := ttdc.AvgThroughput(s, 2)
	if resp.AvgThroughput != want.RatString() {
		t.Fatalf("avgThroughput %q, want %q", resp.AvgThroughput, want.RatString())
	}
	if resp.AvgThroughputFloat != ttdc.RatFloat(want) {
		t.Fatalf("avgThroughputFloat %v, want %v", resp.AvgThroughputFloat, ttdc.RatFloat(want))
	}
	if st := cache.Stats(); st.Constructions != 1 || st.Misses != 1 {
		t.Fatalf("cache stats after one request: %+v", st)
	}
	// Second identical request: a pure cache hit.
	if rec2, _ := get(t, h, "/schedule?n=25&D=2&alphaT=3&alphaR=5"); rec2.Code != http.StatusOK {
		t.Fatalf("repeat status %d", rec2.Code)
	}
	if st := cache.Stats(); st.Constructions != 1 || st.Hits != 1 {
		t.Fatalf("cache stats after repeat: %+v", st)
	}
}

func TestScheduleNonSleepingDefault(t *testing.T) {
	h := Handler(schedcache.New(4))
	rec, body := get(t, h, "/schedule?n=9&D=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp scheduleResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	s, err := ttdc.DecodeSchedule(bytes.NewReader(resp.Schedule))
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsNonSleeping() {
		t.Fatal("capless request should serve the non-sleeping base schedule")
	}
	if resp.ActiveFraction != 1 {
		t.Fatalf("non-sleeping activeFraction = %v", resp.ActiveFraction)
	}
}

func TestScheduleBadRequests(t *testing.T) {
	h := Handler(schedcache.New(4))
	cases := []struct {
		path string
		code int
	}{
		{"/schedule", http.StatusBadRequest},                                    // n missing
		{"/schedule?n=25", http.StatusBadRequest},                               // D missing
		{"/schedule?n=x&D=2", http.StatusBadRequest},                            // non-integer
		{"/schedule?n=25&D=2&alphaT=3", http.StatusBadRequest},                  // αR missing
		{"/schedule?n=25&D=2&strategy=zigzag", http.StatusBadRequest},           // unknown strategy
		{"/schedule?n=9&D=2&alphaT=8&alphaR=8", http.StatusUnprocessableEntity}, // infeasible caps
		{"/schedule?n=2&D=9", http.StatusBadRequest},                            // D > n-1
		{"/schedule?n=999999999&D=3&alphaT=2&alphaR=4", http.StatusBadRequest},  // n past the serving bound
		{"/schedule?n=65536&D=1000", http.StatusUnprocessableEntity},            // past the build budget
	}
	for _, tc := range cases {
		rec, body := get(t, h, tc.path)
		if rec.Code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.path, rec.Code, tc.code, body)
			continue
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON: %s", tc.path, body)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/schedule?n=9&D=2", strings.NewReader("{}")))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}

// TestConcurrentScheduleRequests serves 100 concurrent /schedule requests
// over 4 distinct keys and asserts the cache deduplicated every burst to
// exactly one construction per distinct key. Must pass under -race.
func TestConcurrentScheduleRequests(t *testing.T) {
	cache := schedcache.New(16)
	h := Handler(cache)
	paths := []string{
		"/schedule?n=25&D=2&alphaT=3&alphaR=5",
		"/schedule?n=25&D=2&alphaT=3&alphaR=5&strategy=balanced",
		"/schedule?n=16&D=2&alphaT=2&alphaR=4",
		"/schedule?n=9&D=2",
	}
	const requests = 100
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
	)
	start.Add(1)
	done.Add(requests)
	for i := 0; i < requests; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, paths[i%len(paths)], nil))
			if rec.Code != http.StatusOK {
				t.Errorf("request %d: status %d", i, rec.Code)
			}
		}(i)
	}
	start.Done()
	done.Wait()
	st := cache.Stats()
	if want := int64(len(paths)); st.Constructions != want {
		t.Fatalf("constructions = %d, want %d (one per distinct key); stats %+v", st.Constructions, want, st)
	}
	if st.Hits+st.Misses != requests {
		t.Fatalf("hits %d + misses %d != %d requests", st.Hits, st.Misses, requests)
	}
	if st.Inflight != 0 {
		t.Fatalf("inflight gauge stuck at %d", st.Inflight)
	}
}

func TestHealthz(t *testing.T) {
	rec, body := get(t, Handler(schedcache.New(4)), "/healthz")
	if rec.Code != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", rec.Code, body)
	}
}

func TestMetrics(t *testing.T) {
	cache := schedcache.New(4)
	h := Handler(cache)
	for i := 0; i < 3; i++ {
		if rec, _ := get(t, h, "/schedule?n=9&D=2"); rec.Code != http.StatusOK {
			t.Fatalf("warmup status %d", rec.Code)
		}
	}
	get(t, h, "/schedule?n=bogus&D=2") // a 400 also counts as a request
	rec, body := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var m struct {
		Cache    map[string]int64 `json:"cache"`
		Requests int64            `json:"requests"`
		Latency  map[string]int64 `json:"schedule_latency"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if m.Cache["hits"] != 2 || m.Cache["misses"] != 1 || m.Cache["constructions"] != 1 {
		t.Fatalf("cache metrics: %v", m.Cache)
	}
	if m.Cache["capacity"] != 4 || m.Cache["entries"] != 1 {
		t.Fatalf("cache shape metrics: %v", m.Cache)
	}
	if m.Requests != 4 {
		t.Fatalf("requests = %d, want 4", m.Requests)
	}
	if m.Latency["count"] != 4 || m.Latency["le_inf"] != 4 {
		t.Fatalf("latency histogram: %v", m.Latency)
	}
	// Cumulative buckets must be monotone up to le_inf.
	prev := int64(0)
	for _, b := range latencyBuckets {
		cur := m.Latency["le_"+b.String()]
		if cur < prev {
			t.Fatalf("histogram not cumulative: %v", m.Latency)
		}
		prev = cur
	}
	if m.Latency["le_inf"] < prev {
		t.Fatalf("le_inf below last bucket: %v", m.Latency)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-nope"}, &out, &errb); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func ExampleHandler() {
	h := Handler(schedcache.New(4))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/schedule?n=25&D=2&alphaT=3&alphaR=5", nil))
	var resp scheduleResponse
	json.Unmarshal(rec.Body.Bytes(), &resp) //nolint:errcheck
	fmt.Println(rec.Code, resp.L, resp.AvgThroughput)
	// Output: 200 200 21/920
}
