// Command ttdcserve serves topology-transparent duty-cycling schedules
// over HTTP, memoizing construction so every distinct class
// (n, D, αT, αR, strategy) is built exactly once and then served from an
// LRU cache with singleflight deduplication.
//
// Usage:
//
//	ttdcserve -addr :8080 -cache 1024
//
// Endpoints:
//
//	GET /schedule?n=25&D=2&alphaT=3&alphaR=5[&strategy=balanced]
//	    → {"schedule": {"n":...,"t":...,"r":...}, "l":..., "activeFraction":...,
//	       "avgThroughput":"p/q", ...}; the "schedule" field is exactly the
//	       ttdcgen wire format, so it pipes into ttdcanalyze/ttdcsim.
//	GET /healthz      liveness probe
//	GET /metrics      cache and latency counters (JSON)
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/schedcache"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ttdcserve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ttdcserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		capacity = fs.Int("cache", schedcache.DefaultCapacity, "max cached schedules (LRU)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           Handler(schedcache.New(*capacity)),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Fprintf(stdout, "ttdcserve: listening on %s (cache capacity %d)\n", *addr, *capacity)
	return srv.ListenAndServe()
}
