// Command ttdcserve serves topology-transparent duty-cycling schedules
// over HTTP, memoizing construction so every distinct class
// (n, D, αT, αR, strategy) is built exactly once and then served from an
// LRU cache with singleflight deduplication.
//
// Usage:
//
//	ttdcserve -addr :8080 -cache 1024
//
// Fleet mode shards the keyspace across peers by consistent hashing and
// optionally pre-warms this peer's share of a duty-point lattice:
//
//	ttdcserve -addr :8080 -self http://host0:8080 \
//	    -peers http://host0:8080,http://host1:8080,http://host2:8080 \
//	    -warm 25:2,49:2
//
// Endpoints:
//
//	GET /schedule?n=25&D=2&alphaT=3&alphaR=5[&strategy=balanced]
//	    → JSON (default) or the binary wire frame with
//	      Accept: application/x-ttdc-wire / ?format=wire; strong ETags
//	      and If-None-Match revalidation on both.
//	GET /healthz      liveness probe
//	GET /metrics      cache, latency, shard, and warmer counters (JSON)
//
// SIGINT/SIGTERM shut down gracefully: the listener stops accepting, in-
// flight requests finish, and accepted campaign runs drain (bounded by
// -grace).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/schedcache"
	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ttdcserve:", err)
		os.Exit(1)
	}
}

// parseClasses parses "9:2,25:3" into warm classes.
func parseClasses(s string) ([]shard.Class, error) {
	var out []shard.Class
	for _, part := range strings.Split(s, ",") {
		nd := strings.Split(part, ":")
		if len(nd) != 2 {
			return nil, fmt.Errorf("warm class %q is not n:D", part)
		}
		n, err := strconv.Atoi(nd[0])
		if err != nil {
			return nil, fmt.Errorf("warm class %q: %v", part, err)
		}
		d, err := strconv.Atoi(nd[1])
		if err != nil {
			return nil, fmt.Errorf("warm class %q: %v", part, err)
		}
		out = append(out, shard.Class{N: n, D: d})
	}
	return out, nil
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ttdcserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		capacity = fs.Int("cache", schedcache.DefaultCapacity, "max cached schedules (LRU)")
		artBytes = fs.Int64("artifact-bytes", 0, "artifact cache byte budget (0 = 64 MiB)")
		maxAge   = fs.Int("max-age", serve.DefaultMaxAge, "Cache-Control max-age seconds (negative disables)")
		grace    = fs.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests and campaign runs")

		self     = fs.String("self", "", "this peer's base URL within -peers (enables sharding)")
		peers    = fs.String("peers", "", "comma-separated peer base URLs forming the consistent-hash ring")
		replicas = fs.Int("replicas", shard.DefaultReplicas, "virtual nodes per peer on the ring")

		warm      = fs.String("warm", "", "comma-separated n:D classes to pre-warm in the background")
		warmAT    = fs.Int("warm-alpha-t", 4, "warm lattice αT clip (0 = up to n)")
		warmAR    = fs.Int("warm-alpha-r", 8, "warm lattice αR clip (0 = up to n)")
		warmConc  = fs.Int("warm-concurrency", shard.DefaultWarmConcurrency, "concurrent warm constructions")
		warmCells = fs.Int64("warm-cells", shard.DefaultCellBudget, "warm budget in predicted schedule cells (n×L)")
		warmBytes = fs.Int64("warm-bytes", 0, "stop warming once the cache holds this many bytes (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	svc := serve.NewServiceBytes(*capacity, *artBytes)
	opts := serve.Options{MaxAge: *maxAge}
	if *maxAge == 0 {
		opts.MaxAge = -1 // flag 0 means "no header"; Options 0 means default
	}

	var fwd *shard.Forwarder
	if *peers != "" {
		if *self == "" {
			return fmt.Errorf("-peers requires -self")
		}
		f, err := shard.NewForwarder(shard.Config{
			Self:     *self,
			Peers:    strings.Split(*peers, ","),
			Replicas: *replicas,
		})
		if err != nil {
			return err
		}
		fwd = f
		opts.Forwarder = f
	}

	var warmer *shard.Warmer
	if *warm != "" {
		classes, err := parseClasses(*warm)
		if err != nil {
			return err
		}
		cfg := shard.WarmerConfig{
			Classes:   classes,
			MaxAlphaT: *warmAT, MaxAlphaR: *warmAR,
			Concurrency: *warmConc,
			CellBudget:  *warmCells,
			ByteBudget:  *warmBytes,
			Build:       svc.Schedule,
		}
		if *warmBytes > 0 {
			cfg.Stats = svc.Cache().Stats
		}
		if fwd != nil {
			cfg.Owns = func(k schedcache.Key) bool { return fwd.Owns(k.Canonical()) }
		}
		warmer, err = shard.NewWarmer(cfg)
		if err != nil {
			return err
		}
		opts.Warmer = warmer
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.NewHandler(svc, opts), ReadHeaderTimeout: 5 * time.Second}
	fmt.Fprintf(stdout, "ttdcserve: listening on %s (cache capacity %d)\n", ln.Addr(), *capacity)

	var wg sync.WaitGroup
	warmCtx, warmCancel := context.WithCancel(ctx)
	defer warmCancel()
	if warmer != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := warmer.Run(warmCtx); err != nil && !errors.Is(err, context.Canceled) {
				fmt.Fprintln(stderr, "ttdcserve: warmer:", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveErr <- srv.Serve(ln)
	}()

	select {
	case err := <-serveErr:
		warmCancel()
		wg.Wait()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "ttdcserve: shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	err = srv.Shutdown(shCtx)
	if derr := svc.Drain(shCtx); derr != nil && err == nil {
		err = fmt.Errorf("draining campaign runs: %w", derr)
	}
	warmCancel()
	wg.Wait()
	return err
}
