package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	ttdc "repro"
	"repro/internal/schedcache"
)

// scheduleResponse is the /schedule payload: the EncodeSchedule wire
// format embedded verbatim, plus the analysis figures a node (or an
// operator) wants alongside it.
type scheduleResponse struct {
	// Schedule is the exact EncodeSchedule JSON document
	// ({"n":..., "t":[[...]], "r":[[...]]}); DecodeSchedule accepts it.
	Schedule json.RawMessage `json:"schedule"`
	// Request echo.
	N        int    `json:"n"`
	D        int    `json:"d"`
	AlphaT   int    `json:"alphaT"`
	AlphaR   int    `json:"alphaR"`
	Strategy string `json:"strategy"`
	// Analysis.
	L                  int     `json:"l"`
	ActiveFraction     float64 `json:"activeFraction"`
	AvgThroughput      string  `json:"avgThroughput"` // exact Theorem-2 rational
	AvgThroughputFloat float64 `json:"avgThroughputFloat"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// latencyBuckets are the upper bounds of the /metrics request-latency
// histogram; a final +Inf bucket catches the rest.
var latencyBuckets = []time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// histogram is a fixed-bucket latency histogram with atomic counters;
// counts[len(latencyBuckets)] is the +Inf bucket.
type histogram struct {
	counts []atomic.Int64
	total  atomic.Int64 // observations
	sumNS  atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	i := 0
	for ; i < len(latencyBuckets) && d > latencyBuckets[i]; i++ {
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumNS.Add(int64(d))
}

// snapshot renders cumulative ("le") bucket counts, expvar-style.
func (h *histogram) snapshot() map[string]int64 {
	out := make(map[string]int64, len(latencyBuckets)+3)
	var cum int64
	for i, b := range latencyBuckets {
		cum += h.counts[i].Load()
		out["le_"+b.String()] = cum
	}
	cum += h.counts[len(latencyBuckets)].Load()
	out["le_inf"] = cum
	out["count"] = h.total.Load()
	out["sum_ns"] = h.sumNS.Load()
	return out
}

// server holds the handler state: the schedule cache, the async campaign
// runner, and request metrics.
type server struct {
	cache    *schedcache.Cache
	jobs     *jobsAPI
	latency  *histogram
	requests atomic.Int64
	started  time.Time
}

// Handler builds the ttdcserve HTTP API over c:
//
//	GET  /schedule?n=&D=&alphaT=&alphaR=&strategy=  schedule + analysis JSON
//	POST /jobs                                      submit a batch campaign
//	GET  /jobs                                      list submitted campaigns
//	GET  /jobs/{id}                                 campaign progress + results
//	GET  /healthz                                   liveness probe
//	GET  /metrics                                   cache + engine stats, latency histogram
//
// It is exported (and main is a thin wrapper) so tests drive it through
// net/http/httptest without binding a port.
func Handler(c *schedcache.Cache) http.Handler {
	s := &server{cache: c, jobs: newJobsAPI(c), latency: newHistogram(), started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/schedule", s.handleSchedule)
	mux.HandleFunc("POST /jobs", s.jobs.handleSubmit)
	mux.HandleFunc("GET /jobs", s.jobs.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.jobs.handleGet)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// intParam parses query parameter name as an int, with def when absent.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", name, v)
	}
	return i, nil
}

func (s *server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.latency.observe(time.Since(start)) }()
	s.requests.Add(1)

	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	n, err := intParam(r, "n", 0)
	if err == nil && n == 0 {
		err = fmt.Errorf("parameter n is required")
	}
	var d int
	if err == nil {
		d, err = intParam(r, "D", 0)
		if d == 0 && err == nil {
			err = fmt.Errorf("parameter D is required")
		}
	}
	var alphaT, alphaR int
	if err == nil {
		alphaT, err = intParam(r, "alphaT", 0)
	}
	if err == nil {
		alphaR, err = intParam(r, "alphaR", 0)
	}
	var strategy = ttdc.Sequential
	if err == nil {
		strategy, err = schedcache.ParseStrategy(r.URL.Query().Get("strategy"))
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := schedcache.Key{N: n, D: d, AlphaT: alphaT, AlphaR: alphaR, Strategy: strategy}
	if err := key.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sched, err := s.cache.Get(key)
	if err != nil {
		// The key parsed but no schedule exists for it (infeasible caps,
		// no admissible field, ...): the request is semantically broken.
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	var wire bytes.Buffer
	if err := ttdc.EncodeSchedule(&wire, sched); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	avg := ttdc.AvgThroughput(sched, d)
	writeJSON(w, http.StatusOK, scheduleResponse{
		Schedule:           json.RawMessage(bytes.TrimSpace(wire.Bytes())),
		N:                  n,
		D:                  d,
		AlphaT:             alphaT,
		AlphaR:             alphaR,
		Strategy:           schedcache.StrategyName(strategy),
		L:                  sched.L(),
		ActiveFraction:     sched.ActiveFraction(),
		AvgThroughput:      avg.RatString(),
		AvgThroughputFloat: ttdc.RatFloat(avg),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"cache": map[string]int64{
			"hits":          st.Hits,
			"misses":        st.Misses,
			"inflight":      st.Inflight,
			"evictions":     st.Evictions,
			"constructions": st.Constructions,
			"errors":        st.Errors,
			"entries":       st.Entries,
			"capacity":      int64(s.cache.Capacity()),
		},
		"engine":           s.jobs.metrics(),
		"requests":         s.requests.Load(),
		"schedule_latency": s.latency.snapshot(),
		"uptime_seconds":   time.Since(s.started).Seconds(),
	})
}
