// Command ttdcbench turns `go test -bench -benchmem` output into the
// machine-readable benchmark files that track the repository's perf
// trajectory (BENCH_engine.json, BENCH_core.json). It parses the standard
// benchmark lines from stdin, and derives speedup pairs from two naming
// conventions:
//
//   - <Prefix>Workers1 / <Prefix>WorkersMax — the engine's serial-vs-
//     parallel sweep and campaign wall-clock comparison;
//   - <Prefix>Naive / <Prefix>Prefix — the old-vs-new kernel comparison
//     of internal/core's prefix-cached verification rewrite;
//   - <Prefix>Legacy / <Prefix>Fast — the sim reference loop vs the
//     struct-of-arrays kernels;
//   - <Prefix>Shards1 / <Prefix>ShardsMax — the sequential kernel vs the
//     sharded slot kernel at one shard per CPU.
//
// The Workers and Shards pairs are parallelism measurements: when both
// sides of one ran under GOMAXPROCS=1 (no -N name suffix), the derived
// entry is marked "single_core": true so the ratio is read as sharding
// overhead rather than parallel speedup.
//
// Custom b.ReportMetric units (peakRSS-MB, gomaxprocs, numcpu from the
// TTDC_SCALE benchmarks) land in each benchmark's "extra" map. -merge folds
// a run into an existing file instead of replacing it, so the scale entries
// coexist with the standard ones.
//
// Usage (see the Makefile bench and bench-scale targets):
//
//	go test -run xxx -bench . -benchmem ./internal/engine | ttdcbench -o BENCH_engine.json
//	go test -run xxx -bench . -benchmem ./internal/core | ttdcbench -o BENCH_core.json
//	TTDC_SCALE=1 go test -run xxx -bench Scale -benchtime 1x ./internal/sim | ttdcbench -merge -o BENCH_sim.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp,omitempty"`
	AllocsPerOp float64 `json:"allocsPerOp,omitempty"`
	// Extra holds custom b.ReportMetric units the line carried beyond the
	// standard three — the scale benchmarks report "peakRSS-MB",
	// "gomaxprocs", and "numcpu" so a number taken on an affinity-pinned
	// host explains itself.
	Extra map[string]float64 `json:"extra,omitempty"`
	// Procs is the GOMAXPROCS the line ran under, recovered from the -N
	// name suffix (absent suffix means 1). Zero only in documents written
	// before this field existed, where it is unknown.
	Procs int `json:"procs,omitempty"`
}

// Speedup is one derived before/after wall-clock ratio: Workers1 vs
// WorkersMax for the engine pairs, Naive vs Prefix for the kernel pairs.
// SerialNs holds the baseline (serial or naive) and MaxNs the comparison
// (parallel or prefix-cached); Speedup = SerialNs / MaxNs.
type Speedup struct {
	Name     string  `json:"name"`
	SerialNs float64 `json:"serialNs"`
	MaxNs    float64 `json:"maxNs"`
	Speedup  float64 `json:"speedup"`
	// SingleCore marks a parallelism pair (Workers or Shards) whose two
	// sides both ran under GOMAXPROCS=1: the ratio then measures sharding
	// overhead, not parallel speedup, and a dashboard should not read it
	// as a scaling number. Algorithmic pairs (Naive/Prefix, Legacy/Fast)
	// are never marked — their ratios are meaningful on one core.
	SingleCore bool `json:"single_core,omitempty"`
}

// File is the BENCH_engine.json document.
type File struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	NumCPU     int         `json:"numCPU"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"speedups,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ttdcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ttdcbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output file (empty = stdout)")
	merge := fs.Bool("merge", false, "merge into an existing -o file instead of replacing it (same-name benchmarks are updated, others kept)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	doc, err := parse(stdin)
	if err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (is -bench running?)")
	}
	if *merge && *out != "" {
		if err := mergeExisting(doc, *out); err != nil {
			return err
		}
	}
	payload, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	payload = append(payload, '\n')
	if *out == "" {
		_, err = stdout.Write(payload)
		return err
	}
	if err := os.WriteFile(*out, payload, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ttdcbench: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
	return nil
}

// mergeExisting folds the benchmarks already recorded in path into doc:
// entries the new run re-measured are replaced, everything else is kept in
// its original order ahead of the new names, and the speedup pairs are
// re-derived over the union. This is how `make bench-scale` adds the
// TTDC_SCALE entries to BENCH_sim.json without clobbering the standard
// `make bench` results. A missing file is not an error — merge into nothing
// is a plain write.
func mergeExisting(doc *File, path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var prev File
	if err := json.Unmarshal(data, &prev); err != nil {
		return fmt.Errorf("merge %s: %w", path, err)
	}
	fresh := make(map[string]Benchmark, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		fresh[b.Name] = b
	}
	merged := make([]Benchmark, 0, len(prev.Benchmarks)+len(doc.Benchmarks))
	for _, b := range prev.Benchmarks {
		if nb, ok := fresh[b.Name]; ok {
			merged = append(merged, nb)
			delete(fresh, b.Name)
		} else {
			merged = append(merged, b)
		}
	}
	for _, b := range doc.Benchmarks {
		if _, ok := fresh[b.Name]; ok {
			merged = append(merged, b)
		}
	}
	doc.Benchmarks = merged
	doc.Speedups = deriveSpeedups(merged)
	return nil
}

func parse(r io.Reader) (*File, error) {
	doc := &File{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	doc.Speedups = deriveSpeedups(doc.Benchmarks)
	return doc, nil
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkSweepWorkers1-8   3   423707670 ns/op   25939616 B/op   743498 allocs/op
//
// The -N GOMAXPROCS suffix (absent on single-proc runs) is stripped.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Benchmark{}, false
	}
	name, procs := fields[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, NsPerOp: ns, Procs: procs}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[unit] = v
		}
	}
	return b, true
}

// speedupPairs lists the recognized baseline/comparison suffix pairs.
// parallel marks the pairs whose comparison side needs more than one core
// to mean anything; only those get the single_core flag.
var speedupPairs = []struct {
	base, comp string
	parallel   bool
}{
	{"Workers1", "WorkersMax", true}, // engine serial vs worker pool
	{"Naive", "Prefix", false},       // core naive scan vs prefix-cached kernel
	{"Legacy", "Fast", false},        // sim reference loop vs struct-of-arrays path
	{"Shards1", "ShardsMax", true},   // sim sequential kernel vs sharded slot kernel
}

// deriveSpeedups pairs benchmarks whose names differ only by a recognized
// baseline/comparison suffix and records their wall-clock ratios,
// preserving input order.
func deriveSpeedups(benches []Benchmark) []Speedup {
	var out []Speedup
	for _, b := range benches {
		for _, p := range speedupPairs {
			prefix, ok := strings.CutSuffix(b.Name, p.base)
			if !ok {
				continue
			}
			for _, m := range benches {
				if m.Name == prefix+p.comp && m.NsPerOp > 0 {
					out = append(out, Speedup{
						Name:     strings.TrimPrefix(prefix, "Benchmark"),
						SerialNs: b.NsPerOp,
						MaxNs:    m.NsPerOp,
						Speedup:  b.NsPerOp / m.NsPerOp,
						// Procs == 0 means a pre-procs document, where the
						// host core count is unknown; leave it unmarked.
						SingleCore: p.parallel && b.Procs == 1 && m.Procs == 1,
					})
				}
			}
		}
	}
	return out
}
