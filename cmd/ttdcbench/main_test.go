package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/engine
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCampaignWorkers1   	       2	  11346089 ns/op	  588560 B/op	   11269 allocs/op
BenchmarkCampaignWorkersMax-8 	       2	   5673044 ns/op	  571296 B/op	   11115 allocs/op
BenchmarkSweepWorkers1      	       1	 423707670 ns/op	25939616 B/op	  743498 allocs/op
BenchmarkSweepWorkersMax    	       1	 211853835 ns/op	25932320 B/op	  743456 allocs/op
BenchmarkCacheWarm          	50000000	        34.1 ns/op
PASS
ok  	repro/internal/engine	0.862s
goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCheckRequirement3N31D3Naive  	     416	   2869913 ns/op	   10168 B/op	     155 allocs/op
BenchmarkCheckRequirement3N31D3Prefix-8 	    2794	    447110 ns/op	    3912 B/op	      46 allocs/op
PASS
ok  	repro/internal/core	5.151s
goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSaturationCampaignLegacy 	       5	 240000000 ns/op
BenchmarkSaturationCampaignFast 	     500	   2400000 ns/op
BenchmarkShardedSlotsShards1    	      10	    100000 ns/op
BenchmarkShardedSlotsShardsMax  	      10	     95000 ns/op
PASS
ok  	repro/internal/sim	3.1s
`

func TestParseAndDerive(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(nil, strings.NewReader(sample), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	var doc File
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Errorf("header = %+v", doc)
	}
	if doc.GOMAXPROCS <= 0 || doc.NumCPU <= 0 {
		t.Errorf("CPU header: gomaxprocs=%d numCPU=%d", doc.GOMAXPROCS, doc.NumCPU)
	}
	if len(doc.Benchmarks) != 11 {
		t.Fatalf("parsed %d benchmarks, want 11", len(doc.Benchmarks))
	}
	// The -8 suffix is stripped into Procs; memory columns survive.
	if doc.Benchmarks[1].Name != "BenchmarkCampaignWorkersMax" || doc.Benchmarks[1].BytesPerOp != 571296 {
		t.Errorf("benchmarks[1] = %+v", doc.Benchmarks[1])
	}
	if doc.Benchmarks[0].Procs != 1 || doc.Benchmarks[1].Procs != 8 {
		t.Errorf("procs = %d, %d; want 1, 8", doc.Benchmarks[0].Procs, doc.Benchmarks[1].Procs)
	}
	// Fractional ns/op parses.
	if doc.Benchmarks[4].NsPerOp != 34.1 || doc.Benchmarks[4].Iterations != 50000000 {
		t.Errorf("benchmarks[4] = %+v", doc.Benchmarks[4])
	}
	if len(doc.Speedups) != 5 {
		t.Fatalf("speedups = %+v", doc.Speedups)
	}
	// Campaign's comparison side ran under -8, so the pair is a real
	// parallel measurement and must not be flagged single-core.
	if doc.Speedups[0].Name != "Campaign" || doc.Speedups[0].Speedup < 1.99 || doc.Speedups[0].Speedup > 2.01 ||
		doc.Speedups[0].SingleCore {
		t.Errorf("speedups[0] = %+v", doc.Speedups[0])
	}
	// Both Sweep sides ran without a -N suffix (GOMAXPROCS=1): the
	// Workers pair is flagged so nobody reads it as parallel scaling.
	if doc.Speedups[1].Name != "Sweep" || !doc.Speedups[1].SingleCore {
		t.Errorf("speedups[1] = %+v", doc.Speedups[1])
	}
	// The kernel Naive/Prefix pair derives an old-vs-new speedup too.
	if doc.Speedups[2].Name != "CheckRequirement3N31D3" ||
		doc.Speedups[2].Speedup < 6.41 || doc.Speedups[2].Speedup > 6.43 {
		t.Errorf("speedups[2] = %+v", doc.Speedups[2])
	}
	// The simulator Legacy/Fast pair is algorithmic: both sides ran on one
	// core here, and it still must not be flagged — the ratio is valid.
	if doc.Speedups[3].Name != "SaturationCampaign" ||
		doc.Speedups[3].Speedup < 99 || doc.Speedups[3].Speedup > 101 ||
		doc.Speedups[3].SingleCore {
		t.Errorf("speedups[3] = %+v", doc.Speedups[3])
	}
	// Shards1/ShardsMax on one core is the other flagged parallel pair.
	if doc.Speedups[4].Name != "ShardedSlots" || !doc.Speedups[4].SingleCore {
		t.Errorf("speedups[4] = %+v", doc.Speedups[4])
	}
}

func TestNoBenchmarksErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(nil, strings.NewReader("PASS\nok x 0.1s\n"), &out, &errOut); err == nil {
		t.Fatal("empty bench output accepted")
	}
}
