package main

import (
	"bytes"
	"strings"
	"testing"

	ttdc "repro"
)

func TestRunSummary(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-n", "9", "-D", "2"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"RECOMMENDED:", "frame length", "Thr^ave", "Thr^min"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunEmitPipesIntoDecode(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-n", "9", "-D", "2", "-emit"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s, err := ttdc.DecodeSchedule(&out)
	if err != nil {
		t.Fatalf("emitted schedule does not decode: %v", err)
	}
	if s.N() < 9 {
		t.Errorf("emitted schedule covers n=%d, want >= 9", s.N())
	}
}

func TestRunInfeasibleRequirements(t *testing.T) {
	var out, errOut bytes.Buffer
	// A lifetime floor no configuration can reach must error, not succeed.
	if err := run([]string{"-n", "9", "-D", "2", "-min-lifetime", "1000000"}, &out, &errOut); err == nil {
		t.Fatal("impossible lifetime floor produced a recommendation")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out, &errOut); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
