// Command ttdcplan turns application requirements into a concrete
// topology-transparent duty-cycling schedule: it searches the
// construction × (αT, αR) space and recommends the feasible configuration
// with the longest projected battery lifetime.
//
// Usage:
//
//	ttdcplan -n 25 -D 2 -max-hop-latency 2 -min-lifetime 0.05
//	ttdcplan -n 25 -D 2 -emit | ttdcanalyze -D 2 -report
package main

import (
	"flag"
	"fmt"
	"os"

	ttdc "repro"
)

func main() {
	var (
		n        = flag.Int("n", 25, "maximum number of nodes")
		d        = flag.Int("D", 2, "maximum node degree")
		maxLat   = flag.Float64("max-hop-latency", 0, "worst-case per-hop wait cap, seconds (0 = unconstrained)")
		minLife  = flag.Float64("min-lifetime", 0, "first-death lifetime floor, years (0 = unconstrained)")
		minThr   = flag.Float64("min-throughput", 0, "average worst-case throughput floor (0 = unconstrained)")
		battery  = flag.Float64("battery", 20000, "battery capacity, joules")
		balanced = flag.Bool("balanced", false, "use the balanced-energy division")
		emit     = flag.Bool("emit", false, "print the chosen schedule as JSON (for piping) instead of the summary")
	)
	flag.Parse()

	p, err := ttdc.PlanBest(ttdc.Requirements{
		MaxNodes:             *n,
		MaxDegree:            *d,
		MaxHopLatencySeconds: *maxLat,
		MinLifetimeYears:     *minLife,
		MinAvgThroughput:     *minThr,
		BatteryJoules:        *battery,
		Balanced:             *balanced,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttdcplan:", err)
		os.Exit(1)
	}
	if *emit {
		if err := ttdc.EncodeSchedule(os.Stdout, p.Schedule); err != nil {
			fmt.Fprintln(os.Stderr, "ttdcplan:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("RECOMMENDED: %s", p.Base)
	if p.AlphaT > 0 {
		fmt.Printf(" + Construct(αT=%d, αR=%d)", p.AlphaT, p.AlphaR)
	} else {
		fmt.Printf(" (non-sleeping)")
	}
	fmt.Println()
	fmt.Printf("  frame length      %d slots\n", p.Schedule.L())
	fmt.Printf("  active fraction   %.3f\n", p.ActiveFraction)
	fmt.Printf("  hop latency       %.3f s worst case\n", p.HopLatencySeconds)
	fmt.Printf("  lifetime          %.2f years (first death, %.0f J battery)\n", p.LifetimeYears, *battery)
	fmt.Printf("  Thr^ave           %s\n", p.AvgThroughput.RatString())
	fmt.Printf("  Thr^min           %s\n", p.MinThroughput.RatString())
	for _, r := range p.Rationale {
		fmt.Printf("  • %s\n", r)
	}
}
