// Command ttdcplan turns application requirements into a concrete
// topology-transparent duty-cycling schedule: it searches the
// construction × (αT, αR) space and recommends the feasible configuration
// with the longest projected battery lifetime.
//
// Usage:
//
//	ttdcplan -n 25 -D 2 -max-hop-latency 2 -min-lifetime 0.05
//	ttdcplan -n 25 -D 2 -emit | ttdcanalyze -D 2 -report
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	ttdc "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ttdcplan:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ttdcplan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n        = fs.Int("n", 25, "maximum number of nodes")
		d        = fs.Int("D", 2, "maximum node degree")
		maxLat   = fs.Float64("max-hop-latency", 0, "worst-case per-hop wait cap, seconds (0 = unconstrained)")
		minLife  = fs.Float64("min-lifetime", 0, "first-death lifetime floor, years (0 = unconstrained)")
		minThr   = fs.Float64("min-throughput", 0, "average worst-case throughput floor (0 = unconstrained)")
		battery  = fs.Float64("battery", 20000, "battery capacity, joules")
		balanced = fs.Bool("balanced", false, "use the balanced-energy division")
		emit     = fs.Bool("emit", false, "print the chosen schedule as JSON (for piping) instead of the summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := ttdc.PlanBest(ttdc.Requirements{
		MaxNodes:             *n,
		MaxDegree:            *d,
		MaxHopLatencySeconds: *maxLat,
		MinLifetimeYears:     *minLife,
		MinAvgThroughput:     *minThr,
		BatteryJoules:        *battery,
		Balanced:             *balanced,
	})
	if err != nil {
		return err
	}
	if *emit {
		return ttdc.EncodeSchedule(stdout, p.Schedule)
	}
	fmt.Fprintf(stdout, "RECOMMENDED: %s", p.Base)
	if p.AlphaT > 0 {
		fmt.Fprintf(stdout, " + Construct(αT=%d, αR=%d)", p.AlphaT, p.AlphaR)
	} else {
		fmt.Fprintf(stdout, " (non-sleeping)")
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "  frame length      %d slots\n", p.Schedule.L())
	fmt.Fprintf(stdout, "  active fraction   %.3f\n", p.ActiveFraction)
	fmt.Fprintf(stdout, "  hop latency       %.3f s worst case\n", p.HopLatencySeconds)
	fmt.Fprintf(stdout, "  lifetime          %.2f years (first death, %.0f J battery)\n", p.LifetimeYears, *battery)
	fmt.Fprintf(stdout, "  Thr^ave           %s\n", p.AvgThroughput.RatString())
	fmt.Fprintf(stdout, "  Thr^min           %s\n", p.MinThroughput.RatString())
	for _, r := range p.Rationale {
		fmt.Fprintf(stdout, "  • %s\n", r)
	}
	return nil
}
