package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunCleanTree(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"testdata/good"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q stderr=%q", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean tree produced output: %q", out.String())
	}
}

func TestRunFindings(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"testdata/bad"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr=%q", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"ratcompare: *big.Rat compared with ==",
		"maporder: fmt.Println call inside range over map",
		"ratfloat: lossy Rat.Float64",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 {
		t.Fatalf("findings = %d, want 3:\n%s", len(lines), got)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "testdata/bad/bad.go:") {
			t.Errorf("diagnostic not in file:line form: %q", line)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "testdata/bad"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr=%q", code, errb.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(diags) != 3 {
		t.Fatalf("json findings = %d, want 3", len(diags))
	}
	analyzers := map[string]bool{}
	for _, d := range diags {
		if d.File != "testdata/bad/bad.go" || d.Line <= 0 || d.Col <= 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic %+v", d)
		}
		analyzers[d.Analyzer] = true
	}
	for _, a := range []string{"ratcompare", "maporder", "ratfloat"} {
		if !analyzers[a] {
			t.Errorf("missing %s finding in JSON output", a)
		}
	}
}

func TestRunMissingDir(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"testdata/nosuchdir"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if errb.Len() == 0 {
		t.Fatal("expected a load error on stderr")
	}
}

// TestRunSelfTree lints this command's own directory via the default
// `./...` pattern (testdata is skipped by the tree walk): ttdclint must be
// clean under its own analyzers.
func TestRunSelfTree(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("ttdclint is not self-clean: exit=%d\n%s%s", code, out.String(), errb.String())
	}
}
