package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCleanTree(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"testdata/good"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q stderr=%q", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean tree produced output: %q", out.String())
	}
}

// badAnalyzers is one expected message fragment per analyzer that must
// fire on the dirty fixture tree — each flow-aware analyzer has at least
// one bad-fixture finding here.
var badAnalyzers = map[string]string{
	"ratcompare": "*big.Rat compared with ==",
	"maporder":   "fmt.Println call inside range over map",
	"ratfloat":   "lossy Rat.Float64",
	"poolput":    "can reach a return with no Put",
	"ctxcancel":  "discarded",
	"waitpair":   "no WaitGroup or channel join",
	"atomicmix":  "accessed atomically",
	"mutexcopy":  "copies guarded",
	"walltime":   "reads the wall clock",
	"floatflow":  "does not trace to an approved finalizer",
	"poolescape": "outlives the call",
	"detflow":    "deterministic outputs must be path-clean",
	"allocflow":  "make allocates",
	"boxing":     "boxes",
	"growloop":   "not provably pre-sized",
}

func TestRunFindings(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"testdata/bad"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr=%q", code, errb.String())
	}
	got := out.String()
	for analyzer, fragment := range badAnalyzers {
		if !strings.Contains(got, analyzer+": ") || !strings.Contains(got, fragment) {
			t.Errorf("output missing %s finding (%q):\n%s", analyzer, fragment, got)
		}
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != len(badAnalyzers) {
		t.Fatalf("findings = %d, want %d:\n%s", len(lines), len(badAnalyzers), got)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "cmd/ttdclint/testdata/bad/") {
			t.Errorf("diagnostic not module-relative: %q", line)
		}
	}
}

func TestRunJSONReport(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "testdata/bad"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr=%q", code, errb.String())
	}
	var report jsonReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(report.Findings) != len(badAnalyzers) {
		t.Fatalf("json findings = %d, want %d", len(report.Findings), len(badAnalyzers))
	}
	if report.Suppressed != 0 || report.Baselined != 0 || len(report.StaleBaseline) != 0 {
		t.Errorf("unexpected counts: %+v", report)
	}
	for _, d := range report.Findings {
		if !strings.HasPrefix(d.File, "cmd/ttdclint/testdata/bad/") || d.Line <= 0 || d.Col <= 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic %+v", d)
		}
	}
	for analyzer := range badAnalyzers {
		if report.PerAnalyzer[analyzer] != 1 {
			t.Errorf("perAnalyzer[%s] = %d, want 1", analyzer, report.PerAnalyzer[analyzer])
		}
	}
}

// TestRunJSONSuppressedCount pins the suppression accounting: the good
// tree's injected-clock //lint:ignore shows up in the report, not as a
// finding.
func TestRunJSONSuppressedCount(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "testdata/good"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr=%q", code, errb.String())
	}
	var report jsonReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Findings) != 0 {
		t.Fatalf("clean tree has findings: %+v", report.Findings)
	}
	if report.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1 (the walltime injection point)", report.Suppressed)
	}
}

func TestRunBaselineWorkflow(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")

	// Step 1: record the current debt.
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", baseline, "-write-baseline", "testdata/bad"}, &out, &errb); code != 0 {
		t.Fatalf("write-baseline exit = %d; stderr=%q", code, errb.String())
	}

	// Step 2: with the baseline applied the dirty tree is green, and the
	// report accounts for every absorbed finding.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-json", "-baseline", baseline, "testdata/bad"}, &out, &errb); code != 0 {
		t.Fatalf("baselined run exit = %d; stderr=%q stdout=%q", code, errb.String(), out.String())
	}
	var report jsonReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if report.Baselined != len(badAnalyzers) || len(report.Findings) != 0 {
		t.Fatalf("baselined = %d findings = %d, want %d and 0", report.Baselined, len(report.Findings), len(badAnalyzers))
	}

	// Step 3: an entry that matches nothing is stale and fails the run.
	var bl baselineFile
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &bl); err != nil {
		t.Fatal(err)
	}
	bl.Findings = append(bl.Findings, baselineEntry{
		File: "cmd/ttdclint/testdata/bad/conc.go", Analyzer: "poolput", Message: "finding that was fixed long ago",
	})
	data, err = json.MarshalIndent(bl, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", baseline, "testdata/bad"}, &out, &errb); code != 1 {
		t.Fatalf("stale baseline exit = %d, want 1; stderr=%q", code, errb.String())
	}
	if !strings.Contains(errb.String(), "stale baseline entry") {
		t.Fatalf("stderr missing stale-entry report: %q", errb.String())
	}
}

func TestRunSARIF(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-sarif", "-", "testdata/bad"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr=%q", code, errb.String())
	}
	var log sarifLog
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output does not parse: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected log shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run0 := log.Runs[0]
	if run0.Tool.Driver.Name != "ttdclint" {
		t.Fatalf("driver name = %q", run0.Tool.Driver.Name)
	}
	// Seventeen analyzers plus the "ignore" and "hotpath" pseudo-rules.
	if len(run0.Tool.Driver.Rules) != 19 {
		t.Fatalf("rules = %d, want 19", len(run0.Tool.Driver.Rules))
	}
	if len(run0.Results) != len(badAnalyzers) {
		t.Fatalf("results = %d, want %d", len(run0.Results), len(badAnalyzers))
	}
	for _, r := range run0.Results {
		loc := r.Locations[0].PhysicalLocation
		if !strings.HasPrefix(loc.ArtifactLocation.URI, "cmd/ttdclint/testdata/bad/") || loc.Region.StartLine <= 0 {
			t.Errorf("bad location %+v", loc)
		}
	}
}

func TestRunEnableDisable(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-enable", "ratcompare", "testdata/bad"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr=%q", code, errb.String())
	}
	if lines := strings.Split(strings.TrimSpace(out.String()), "\n"); len(lines) != 1 || !strings.Contains(lines[0], "ratcompare") {
		t.Fatalf("-enable ratcompare output:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-disable", "ratcompare,maporder,ratfloat", "testdata/bad"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr=%q", code, errb.String())
	}
	got := out.String()
	if strings.Contains(got, "ratcompare") || len(strings.Split(strings.TrimSpace(got), "\n")) != 12 {
		t.Fatalf("-disable output:\n%s", got)
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-enable", "nosuch", "testdata/bad"}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Fatalf("stderr missing unknown-analyzer error: %q", errb.String())
	}
}

func TestRunMissingDir(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"testdata/nosuchdir"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if errb.Len() == 0 {
		t.Fatal("expected a load error on stderr")
	}
}

// TestRunPathsStableAcrossWorkingDirectories pins the reporting contract:
// finding paths are module-relative, so the -json report is byte-identical
// whether ttdclint runs from the module root or from a subdirectory.
func TestRunPathsStableAcrossWorkingDirectories(t *testing.T) {
	orig, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(orig); err != nil {
			t.Fatal(err)
		}
	}()

	var fromHere, fromRoot, errb bytes.Buffer
	if code := run([]string{"-json", "testdata/bad"}, &fromHere, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr=%q", code, errb.String())
	}

	if err := os.Chdir(filepath.Join("..", "..")); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{"-json", filepath.Join("cmd", "ttdclint", "testdata", "bad")}, &fromRoot, &errb); code != 1 {
		t.Fatalf("exit from module root = %d, want 1; stderr=%q", code, errb.String())
	}

	if !bytes.Equal(fromHere.Bytes(), fromRoot.Bytes()) {
		t.Fatalf("report depends on working directory:\n--- from cmd/ttdclint ---\n%s--- from module root ---\n%s",
			fromHere.String(), fromRoot.String())
	}
}

// TestRunHotpathsInventory pins the -hotpaths JSON mode over the dirty
// fixture tree: the three annotated contract-breakers are inventoried with
// module-relative files, exportedness, and their written reasons, and the
// mode reports instead of linting (exit 0 despite the findings).
func TestRunHotpathsInventory(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-hotpaths", "testdata/bad"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr=%q", code, errb.String())
	}
	var report struct {
		Hotpaths []lintHotpathEntry `json:"hotpaths"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("-hotpaths output does not parse: %v\n%s", err, out.String())
	}
	if len(report.Hotpaths) != 3 {
		t.Fatalf("inventory = %d entries, want 3:\n%s", len(report.Hotpaths), out.String())
	}
	want := map[string]string{
		"HotBox":  "claimed box-free but stores an int in an interface",
		"HotGrow": "claimed pre-sized but grows per iteration",
		"HotMake": "claimed allocation-free but calls make",
	}
	for i, e := range report.Hotpaths {
		if e.Name == "" || want[e.Name] != e.Reason {
			t.Errorf("entry %d = %+v, want reason %q", i, e, want[e.Name])
		}
		if e.File != "cmd/ttdclint/testdata/bad/hotpath.go" || e.Line <= 0 || !e.Exported {
			t.Errorf("entry %d location/exportedness wrong: %+v", i, e)
		}
		if i > 0 && report.Hotpaths[i-1].Sym >= e.Sym {
			t.Errorf("inventory not sorted by symbol: %q then %q", report.Hotpaths[i-1].Sym, e.Sym)
		}
	}
}

// lintHotpathEntry mirrors lint.HotpathEntry's wire form for decoding.
type lintHotpathEntry struct {
	Sym      string `json:"sym"`
	Pkg      string `json:"pkg"`
	Name     string `json:"name"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Exported bool   `json:"exported"`
	Reason   string `json:"reason"`
}

// TestRunSelfTree lints this command's own directory via the default
// `./...` pattern (testdata is skipped by the tree walk): ttdclint must be
// clean under its own analyzers.
func TestRunSelfTree(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("ttdclint is not self-clean: exit=%d\n%s%s", code, out.String(), errb.String())
	}
}
