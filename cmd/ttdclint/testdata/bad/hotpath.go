// Hot-path half of the dirty fixture tree: exactly one finding per
// warm-path analyzer — allocflow, boxing, and growloop — each a
// //ttdc:hotpath contract broken in a different, disjoint way.
package bad

// boxSink receives HotBox's boxed value.
var boxSink interface{}

// queue backs HotGrow's unbounded append.
var queue []int

// HotMake allocates directly on a declared warm path.
//
//ttdc:hotpath claimed allocation-free but calls make
func HotMake(n int) []int {
	return make([]int, n)
}

// HotBox boxes a concrete int into an interface on a declared warm path.
//
//ttdc:hotpath claimed box-free but stores an int in an interface
func HotBox(v int) {
	boxSink = v
}

// HotGrow appends inside a loop with no pre-size proof.
//
//ttdc:hotpath claimed pre-sized but grows per iteration
func HotGrow(xs []int) {
	for _, x := range xs {
		queue = append(queue, x)
	}
}
