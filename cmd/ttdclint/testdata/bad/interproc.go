// Interprocedural half of the dirty fixture tree: exactly one finding per
// summary-driven analyzer — floatflow, poolescape, and detflow — each one
// invisible to the intra-procedural suite because the offending half lives
// in another function.
package bad

import "time"

// Summary mirrors a journal-bound result row (registered with floatflow).
type Summary struct {
	Energy float64
	Count  int
}

// FillSummary stores a float of unknown provenance into a journal row.
func FillSummary(res *Summary, e float64) {
	res.Energy = e
	res.Count++
}

type holder struct{ s *scratch }

// StashScratch parks pooled scratch in a holder that outlives the Put.
func StashScratch(h *holder) {
	s := pool.Get().(*scratch)
	h.s = s
	pool.Put(s)
}

// IndirectStamp launders the wall clock through Stamp one call away.
func IndirectStamp() time.Time {
	return Stamp()
}
