// Concurrency half of the dirty fixture tree: exactly one finding per
// flow-aware analyzer — poolput, ctxcancel, waitpair, atomicmix,
// mutexcopy, and walltime — in that order of appearance.
package bad

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

type scratch struct{ sums []uint64 }

var pool = sync.Pool{New: func() any { return new(scratch) }}

// LeakyScratch drops the pooled object on the early-return path.
func LeakyScratch(skip bool) int {
	s := pool.Get().(*scratch)
	if skip {
		return 0
	}
	n := len(s.sums)
	pool.Put(s)
	return n
}

// DetachedContext throws the cancel func away.
func DetachedContext(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent)
	return ctx
}

// FireAndForget spawns a goroutine nothing can join.
func FireAndForget() {
	go step()
}

func step() {}

var ops int64

// CountOp writes atomically.
func CountOp() {
	atomic.AddInt64(&ops, 1)
}

// ReadOps reads the same counter with a plain load.
func ReadOps() int64 {
	return ops
}

type guarded struct {
	mu sync.Mutex
	n  int
}

// SnapshotGuarded copies the mutex along with the data.
func SnapshotGuarded(g guarded) int {
	return g.n
}

// Stamp reads the wall clock in a package held to the determinism rules.
func Stamp() time.Time {
	return time.Now()
}
