// Package bad is the dirty fixture tree for the ttdclint smoke test: it
// must produce exactly one ratcompare, one maporder, and one ratfloat
// finding, in that positional order.
package bad

import (
	"fmt"
	"math/big"
)

// Same compares rationals by pointer — a ratcompare finding.
func Same(a, b *big.Rat) bool {
	return a == b
}

// Dump prints in map order — a maporder finding.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Approx leaks exactness — a ratfloat finding.
func Approx(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}
