// Concurrency half of the clean fixture tree: the sanctioned idiom for
// each flow-aware analyzer — deferred Put, deferred cancel, WaitGroup
// pairing, all-atomic access, pointer passing, and an injected clock
// whose single wall-clock reference carries a justified suppression.
package good

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

type scratch struct{ sums []uint64 }

var pool = sync.Pool{New: func() any { return new(scratch) }}

// SumLen releases the scratch on every path via defer.
func SumLen(skip bool) int {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	if skip {
		return 0
	}
	return len(s.sums)
}

// WithDeadline covers every path with a deferred cancel.
func WithDeadline(parent context.Context) error {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	defer cancel()
	return ctx.Err()
}

// RunAll joins every worker through the WaitGroup.
func RunAll(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			step()
		}()
	}
	wg.Wait()
}

func step() {}

var ops int64

// CountOp and ReadOps agree on atomic access.
func CountOp() {
	atomic.AddInt64(&ops, 1)
}

// ReadOps loads through sync/atomic like every other access.
func ReadOps() int64 {
	return atomic.LoadInt64(&ops)
}

type guarded struct {
	mu sync.Mutex
	n  int
}

// Bump shares the lock through a pointer.
func Bump(g *guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// clock is the injected time source: the one sanctioned wall-clock
// reference, suppressed with a written reason.
//
//lint:ignore walltime single injection point; deterministic callers swap it for a fake
var clock = time.Now

// Stamp reads through the injected clock.
func Stamp() time.Time {
	return clock()
}
