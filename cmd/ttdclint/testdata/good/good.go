// Package good is a clean fixture tree for the ttdclint smoke test: it
// exercises the sanctioned idioms (Cmp comparison, sorted map iteration,
// display via a ratF helper) and must produce zero findings.
package good

import (
	"math/big"
	"sort"
)

// Ratio compares exactly.
func Ratio(a, b *big.Rat) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Cmp(b) == 0
}

// SortedKeys iterates a map with the collect-then-sort idiom.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ratF is the sanctioned display conversion.
func ratF(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}

// Display renders a rational for humans only.
func Display(r *big.Rat) float64 { return ratF(r) }
