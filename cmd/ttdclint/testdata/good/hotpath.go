// Hot-path half of the clean fixture tree: the sanctioned warm-path
// shapes — scratch reset by self-reslice, growth done at most once behind
// a cap guard, and allocation confined to the cold error return.
package good

import "fmt"

// buffer owns a reusable scratch slice.
type buffer struct{ rows []int }

// Refill resets its scratch by self-reslice and appends into the
// retained capacity.
//
//ttdc:hotpath reservoir refill reuses retained scratch capacity
func Refill(dst *buffer, xs []int) {
	dst.rows = dst.rows[:0]
	for _, x := range xs {
		dst.rows = append(dst.rows, x)
	}
}

// Reserve grows the scratch at most once, behind a cap guard.
//
//ttdc:hotpath grow-once scratch guarded by cap
func Reserve(dst *buffer, n int) {
	if cap(dst.rows) < n {
		dst.rows = make([]int, n)
	}
	dst.rows = dst.rows[:n]
}

// Head returns the first row; the only allocation sits on the cold
// error return.
//
//ttdc:hotpath constant-time accessor with a cold error path
func Head(dst *buffer) (int, error) {
	if len(dst.rows) == 0 {
		return 0, fmt.Errorf("empty buffer")
	}
	return dst.rows[0], nil
}
