// Interprocedural half of the clean fixture tree: the sanctioned shapes
// for each summary-driven analyzer — journal floats derived through the
// approved finalizer, pooled scratch that never outlives its release even
// when the Get and the Put sit behind helper calls, and determinism kept
// by the injected clock in conc.go.
package good

// Summary mirrors a journal-bound result row (registered with floatflow).
type Summary struct {
	Energy float64
	Count  int
}

// fromCounts is this tree's approved integer-census finalizer.
func fromCounts(n int) float64 { return float64(n) * 0.125 }

// FillSummary derives the journal float from integer counts.
func FillSummary(res *Summary, n int) {
	res.Energy = fromCounts(n)
	res.Count = n
}

// getScratch transfers pooled ownership out; ReturnsPooled follows it.
func getScratch() *scratch {
	return pool.Get().(*scratch)
}

// putScratch releases its parameter.
func putScratch(s *scratch) { pool.Put(s) }

// UseScratch borrows through the getter and copies out before releasing.
func UseScratch() int {
	s := getScratch()
	n := len(s.sums)
	putScratch(s)
	return n
}
