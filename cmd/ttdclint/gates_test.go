package main

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestAllocGateFilesCurrent is the drift check for the generated AllocsPerRun
// gates: it re-derives every alloc_gate_test.go from the live //ttdc:hotpath
// inventory and byte-compares with the checked-in copies, and it flags any
// gate file on disk that the inventory no longer produces. Regenerate with
// ttdclint -write-alloc-gates.
func TestAllocGateFilesCurrent(t *testing.T) {
	loader, err := lint.NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadTreeParallel(loader.Root, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	entries := lint.BuildProgram(pkgs).Hotpaths()
	files, err := allocGateFiles(entries, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no package has exported //ttdc:hotpath entries; the dogfooded contracts are gone")
	}

	for path, want := range files {
		got, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("missing gate file %s; run ttdclint -write-alloc-gates", relPath(loader.Root, path))
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s is stale; run ttdclint -write-alloc-gates", relPath(loader.Root, path))
		}
	}

	walkErr := filepath.WalkDir(loader.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != loader.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if d.Name() != "alloc_gate_test.go" {
			return nil
		}
		if _, ok := files[path]; !ok {
			t.Errorf("%s gates no exported //ttdc:hotpath entry; delete it or restore the annotations", relPath(loader.Root, path))
		}
		return nil
	})
	if walkErr != nil {
		t.Fatal(walkErr)
	}
}
