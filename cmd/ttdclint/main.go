// Command ttdclint runs the repository's domain linter (internal/lint)
// over the module: it mechanically enforces the reproducibility,
// exact-arithmetic, and concurrency invariants the package documentation
// promises. See the internal/lint package documentation for the analyzer
// suite and the //lint:ignore suppression syntax.
//
// Usage:
//
//	ttdclint [-json] [-sarif file] [-baseline file] [-write-baseline]
//	         [-enable list] [-disable list] [-workers n] [-tests=false]
//	         [-hotpaths] [-write-alloc-gates] [packages...]
//
// Each argument is a directory or a `dir/...` tree pattern; the default is
// `./...`. Tree patterns type-check packages concurrently over a shared
// import cache (-workers bounds the parallelism).
//
// A baseline file (-baseline) is the gated-then-ratcheted adoption
// workflow: findings recorded in it are reported as counts, not failures,
// while a baseline entry that no longer matches any finding is *stale* and
// fails the run — fixed debt must leave the ledger. -write-baseline
// regenerates the file from the current findings.
//
// -hotpaths skips linting and emits the //ttdc:hotpath inventory — every
// annotated function with its symbol, location, exportedness, and written
// reason — as JSON. -write-alloc-gates regenerates the per-package
// alloc_gate_test.go files from that inventory (see gates.go); the checked-
// in copies are drift-checked by this command's own tests.
//
// The exit status is 0 when the tree is clean (after baseline and
// //lint:ignore suppression), 1 when there are findings or stale baseline
// entries, and 2 when packages fail to load or type-check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the wire form of one finding inside the -json report.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json output object.
type jsonReport struct {
	Findings      []jsonDiagnostic `json:"findings"`
	Suppressed    int              `json:"suppressed"`
	Baselined     int              `json:"baselined"`
	PerAnalyzer   map[string]int   `json:"perAnalyzer"`
	StaleBaseline []baselineEntry  `json:"staleBaseline,omitempty"`
}

// baselineEntry identifies one accepted finding. Matching ignores Line so
// unrelated edits that shift code do not invalidate the baseline; Line is
// recorded for human readers.
type baselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Line     int    `json:"line,omitempty"`
}

func (e baselineEntry) key() string {
	return e.File + "\x00" + e.Analyzer + "\x00" + e.Message
}

// baselineFile is the on-disk baseline format.
type baselineFile struct {
	Findings []baselineEntry `json:"findings"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ttdclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit a JSON report object instead of text")
	tests := fs.Bool("tests", true, "also lint _test.go files")
	sarifPath := fs.String("sarif", "", "write a SARIF 2.1.0 log to this file (\"-\" for stdout)")
	baselinePath := fs.String("baseline", "", "baseline file of accepted findings; stale entries fail the run")
	writeBaseline := fs.Bool("write-baseline", false, "regenerate the -baseline file from the current findings and exit")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	workers := fs.Int("workers", 0, "concurrent type-checking workers for tree patterns (0 = GOMAXPROCS)")
	hotpaths := fs.Bool("hotpaths", false, "emit the //ttdc:hotpath inventory as JSON and exit")
	writeGates := fs.Bool("write-alloc-gates", false, "regenerate the per-package alloc_gate_test.go files from the //ttdc:hotpath inventory and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "ttdclint:", err)
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "ttdclint: -write-baseline requires -baseline")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader("")
	if err != nil {
		fmt.Fprintln(stderr, "ttdclint:", err)
		return 2
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		var units []*lint.Package
		var err error
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(rest)
			if rest == "" {
				root = "."
			}
			units, err = loader.LoadTreeParallel(root, *tests, *workers)
		} else {
			units, err = loader.LoadDir(pat, *tests)
		}
		if err != nil {
			fmt.Fprintln(stderr, "ttdclint:", err)
			return 2
		}
		pkgs = append(pkgs, units...)
	}

	if *hotpaths || *writeGates {
		entries := lint.BuildProgram(pkgs).Hotpaths()
		if *hotpaths {
			for i := range entries {
				entries[i].File = relPath(loader.Root, entries[i].File)
			}
			if entries == nil {
				entries = []lint.HotpathEntry{}
			}
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(struct {
				Hotpaths []lint.HotpathEntry `json:"hotpaths"`
			}{entries}); err != nil {
				fmt.Fprintln(stderr, "ttdclint:", err)
				return 2
			}
			return 0
		}
		files, err := allocGateFiles(entries, pkgs)
		if err != nil {
			fmt.Fprintln(stderr, "ttdclint:", err)
			return 2
		}
		var paths []string
		for p := range files {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			if err := os.WriteFile(p, files[p], 0o644); err != nil {
				fmt.Fprintln(stderr, "ttdclint:", err)
				return 2
			}
			fmt.Fprintf(stderr, "ttdclint: wrote %s\n", relPath(loader.Root, p))
		}
		return 0
	}

	res := lint.LintAll(pkgs, analyzers)
	entries := make([]baselineEntry, len(res.Findings))
	for i, d := range res.Findings {
		entries[i] = baselineEntry{
			File:     relPath(loader.Root, d.Pos.Filename),
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Line:     d.Pos.Line,
		}
	}

	if *writeBaseline {
		if err := writeBaselineFile(*baselinePath, entries); err != nil {
			fmt.Fprintln(stderr, "ttdclint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "ttdclint: wrote %d finding(s) to %s\n", len(entries), *baselinePath)
		return 0
	}

	// Apply the baseline: each entry absorbs one matching finding; entries
	// left over are stale (the debt was paid — remove it from the ledger).
	baselined := 0
	var stale []baselineEntry
	kept := entries
	keptDiags := res.Findings
	if *baselinePath != "" {
		bl, err := readBaselineFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "ttdclint:", err)
			return 2
		}
		budget := map[string]int{}
		for _, e := range bl.Findings {
			budget[e.key()]++
		}
		kept = nil
		keptDiags = nil
		for i, e := range entries {
			if budget[e.key()] > 0 {
				budget[e.key()]--
				baselined++
			} else {
				kept = append(kept, e)
				keptDiags = append(keptDiags, res.Findings[i])
			}
		}
		for _, e := range bl.Findings {
			if budget[e.key()] > 0 {
				budget[e.key()]--
				stale = append(stale, e)
			}
		}
	}

	if *sarifPath != "" {
		var w io.Writer = stdout
		if *sarifPath != "-" {
			f, err := os.Create(*sarifPath)
			if err != nil {
				fmt.Fprintln(stderr, "ttdclint:", err)
				return 2
			}
			defer f.Close()
			w = f
		}
		if err := writeSARIF(w, analyzers, kept); err != nil {
			fmt.Fprintln(stderr, "ttdclint:", err)
			return 2
		}
	}

	if *jsonOut {
		report := jsonReport{
			Findings:      make([]jsonDiagnostic, 0, len(kept)),
			Suppressed:    res.Suppressed,
			Baselined:     baselined,
			PerAnalyzer:   map[string]int{},
			StaleBaseline: stale,
		}
		for i, e := range kept {
			report.Findings = append(report.Findings, jsonDiagnostic{
				File:     e.File,
				Line:     e.Line,
				Col:      keptDiags[i].Pos.Column,
				Analyzer: e.Analyzer,
				Message:  e.Message,
			})
			report.PerAnalyzer[e.Analyzer]++
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "ttdclint:", err)
			return 2
		}
	} else if *sarifPath != "-" {
		for _, e := range kept {
			fmt.Fprintf(stdout, "%s:%d: %s: %s\n", e.File, e.Line, e.Analyzer, e.Message)
		}
	}
	for _, e := range stale {
		fmt.Fprintf(stderr, "ttdclint: stale baseline entry (already fixed? remove it): %s: %s: %s\n", e.File, e.Analyzer, e.Message)
	}
	if len(kept) > 0 || len(stale) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves -enable/-disable against the full suite,
// preserving the suite's reporting order.
func selectAnalyzers(enable, disable string) ([]*lint.Analyzer, error) {
	all := lint.All()
	known := map[string]bool{}
	var names []string
	for _, a := range all {
		known[a.Name] = true
		names = append(names, a.Name)
	}
	parse := func(list string) (map[string]bool, error) {
		if list == "" {
			return nil, nil
		}
		set := map[string]bool{}
		for _, n := range strings.Split(list, ",") {
			n = strings.TrimSpace(n)
			if !known[n] {
				return nil, fmt.Errorf("unknown analyzer %q (known: %s)", n, strings.Join(names, ", "))
			}
			set[n] = true
		}
		return set, nil
	}
	on, err := parse(enable)
	if err != nil {
		return nil, err
	}
	off, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if on != nil && !on[a.Name] {
			continue
		}
		if off[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// writeBaselineFile persists entries (already in lint's sorted order).
func writeBaselineFile(path string, entries []baselineEntry) error {
	if entries == nil {
		entries = []baselineEntry{}
	}
	data, err := json.MarshalIndent(baselineFile{Findings: entries}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// readBaselineFile loads and validates a baseline.
func readBaselineFile(path string) (*baselineFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bl baselineFile
	if err := json.Unmarshal(data, &bl); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	for _, e := range bl.Findings {
		if e.File == "" || e.Analyzer == "" || e.Message == "" {
			return nil, fmt.Errorf("baseline %s: entry missing file/analyzer/message: %+v", path, e)
		}
	}
	return &bl, nil
}

// --- SARIF 2.1.0 (minimal subset) ---

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF emits the post-baseline findings as a SARIF 2.1.0 log, with
// one rule per selected analyzer plus the "ignore" and "hotpath"
// pseudo-analyzers that report malformed directives.
func writeSARIF(w io.Writer, analyzers []*lint.Analyzer, entries []baselineEntry) error {
	rules := make([]sarifRule, 0, len(analyzers)+2)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "ignore",
		ShortDescription: sarifText{Text: "//lint:ignore directives must name an analyzer and carry a written reason"},
	})
	rules = append(rules, sarifRule{
		ID:               "hotpath",
		ShortDescription: sarifText{Text: "//ttdc:hotpath directives must carry a written reason and sit in a function declaration's doc comment"},
	})
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(entries))
	for _, e := range entries {
		results = append(results, sarifResult{
			RuleID:  e.Analyzer,
			Level:   "warning",
			Message: sarifText{Text: e.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(e.File)},
					Region:           sarifRegion{StartLine: e.Line},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "ttdclint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relPath renders abs relative to the module root with forward slashes,
// so reports, SARIF logs, and the baseline ledger are byte-identical
// across checkouts and working directories. Paths outside the module keep
// their absolute form.
func relPath(root, abs string) string {
	if root == "" {
		return abs
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return abs
	}
	return filepath.ToSlash(rel)
}
