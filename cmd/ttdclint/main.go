// Command ttdclint runs the repository's domain linter (internal/lint)
// over the module: it mechanically enforces the reproducibility and
// exact-arithmetic invariants the package documentation promises. See the
// internal/lint package documentation for the analyzer suite and the
// //lint:ignore suppression syntax.
//
// Usage:
//
//	ttdclint [-json] [-tests=false] [packages...]
//
// Each argument is a directory or a `dir/...` tree pattern; the default is
// `./...`. The exit status is 0 when the tree is clean, 1 when there are
// findings, and 2 when packages fail to load or type-check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ttdclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	tests := fs.Bool("tests", true, "also lint _test.go files")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader("")
	if err != nil {
		fmt.Fprintln(stderr, "ttdclint:", err)
		return 2
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		var units []*lint.Package
		var err error
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(rest)
			if rest == "" {
				root = "."
			}
			units, err = loader.LoadTree(root, *tests)
		} else {
			units, err = loader.LoadDir(pat, *tests)
		}
		if err != nil {
			fmt.Fprintln(stderr, "ttdclint:", err)
			return 2
		}
		pkgs = append(pkgs, units...)
	}

	diags := lint.Lint(pkgs, lint.All())
	wd, _ := os.Getwd()
	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     relPath(wd, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "ttdclint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d: %s: %s\n", relPath(wd, d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relPath shortens abs to a path relative to the working directory when
// that is both possible and actually shorter to read.
func relPath(wd, abs string) string {
	if wd == "" {
		return abs
	}
	rel, err := filepath.Rel(wd, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return abs
	}
	return rel
}
