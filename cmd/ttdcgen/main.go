// Command ttdcgen constructs topology-transparent schedules and writes them
// as JSON (for piping into ttdcanalyze/ttdcsim) or human-readable text.
//
// Usage:
//
//	ttdcgen -n 25 -D 2 -base polynomial                  # non-sleeping schedule
//	ttdcgen -n 25 -D 2 -base steiner -alphaT 3 -alphaR 5 # duty-cycled
//	ttdcgen -n 25 -D 2 -base tdma -format text
//
// With -alphaT/-alphaR set, the paper's Construct algorithm converts the
// base schedule into an (αT, αR)-schedule; otherwise the base non-sleeping
// schedule is emitted.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	ttdc "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ttdcgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ttdcgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n        = fs.Int("n", 25, "maximum number of nodes in the class N(n, D)")
		d        = fs.Int("D", 2, "maximum node degree in the class N(n, D)")
		base     = fs.String("base", "polynomial", "base construction: tdma | polynomial | steiner | projective | search")
		frameLen = fs.Int("L", 0, "frame length for -base search (0 = n)")
		seed     = fs.Uint64("seed", 1, "seed for -base search")
		alphaT   = fs.Int("alphaT", 0, "max transmitters per slot (0 = keep non-sleeping)")
		alphaR   = fs.Int("alphaR", 0, "max receivers per slot (0 = keep non-sleeping)")
		balanced = fs.Bool("balanced", false, "use the balanced-energy division (§7)")
		format   = fs.String("format", "json", "output format: json | text | grid")
		verify   = fs.Bool("verify", false, "exhaustively verify topology transparency before emitting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ns, err := buildBase(*base, *n, *d, *frameLen, *seed)
	if err != nil {
		return err
	}
	s := ns
	if *alphaT > 0 || *alphaR > 0 {
		if *alphaT <= 0 || *alphaR <= 0 {
			return fmt.Errorf("set both -alphaT and -alphaR (got %d, %d)", *alphaT, *alphaR)
		}
		opts := ttdc.ConstructOptions{AlphaT: *alphaT, AlphaR: *alphaR, D: *d}
		if *balanced {
			opts.Strategy = ttdc.Balanced
		}
		if s, err = ttdc.Construct(ns, opts); err != nil {
			return err
		}
	}
	if *verify {
		if w := ttdc.CheckRequirement3(s, *d); w != nil {
			return fmt.Errorf("schedule failed verification: %v", w)
		}
		fmt.Fprintf(stderr, "verified: topology-transparent for N(%d, %d)\n", *n, *d)
	}
	switch *format {
	case "json":
		return ttdc.EncodeSchedule(stdout, s)
	case "text":
		fmt.Fprintln(stdout, s.String())
		fmt.Fprintf(stdout, "frame length %d, active fraction %.3f\n", s.L(), s.ActiveFraction())
	case "grid":
		fmt.Fprint(stdout, s.Grid(80))
		fmt.Fprintf(stdout, "frame length %d, active fraction %.3f\n", s.L(), s.ActiveFraction())
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	return nil
}

func buildBase(base string, n, d, frameLen int, seed uint64) (*ttdc.Schedule, error) {
	switch base {
	case "tdma":
		return ttdc.TDMA(n)
	case "polynomial":
		return ttdc.PolynomialSchedule(n, d)
	case "steiner":
		if d != 2 {
			return nil, fmt.Errorf("steiner construction supports D = 2 only (got %d)", d)
		}
		return ttdc.SteinerSchedule(n)
	case "projective":
		return ttdc.ProjectiveSchedule(n, d)
	case "search":
		if frameLen == 0 {
			frameLen = n
		}
		return ttdc.SearchSchedule(n, d, frameLen, seed)
	default:
		return nil, fmt.Errorf("unknown base construction %q", base)
	}
}
