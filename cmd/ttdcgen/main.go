// Command ttdcgen constructs topology-transparent schedules and writes them
// as JSON (for piping into ttdcanalyze/ttdcsim) or human-readable text.
//
// Usage:
//
//	ttdcgen -n 25 -D 2 -base polynomial                  # non-sleeping schedule
//	ttdcgen -n 25 -D 2 -base steiner -alphaT 3 -alphaR 5 # duty-cycled
//	ttdcgen -n 25 -D 2 -base tdma -format text
//
// With -alphaT/-alphaR set, the paper's Construct algorithm converts the
// base schedule into an (αT, αR)-schedule; otherwise the base non-sleeping
// schedule is emitted.
package main

import (
	"flag"
	"fmt"
	"os"

	ttdc "repro"
)

func main() {
	var (
		n        = flag.Int("n", 25, "maximum number of nodes in the class N(n, D)")
		d        = flag.Int("D", 2, "maximum node degree in the class N(n, D)")
		base     = flag.String("base", "polynomial", "base construction: tdma | polynomial | steiner | projective | search")
		frameLen = flag.Int("L", 0, "frame length for -base search (0 = n)")
		seed     = flag.Uint64("seed", 1, "seed for -base search")
		alphaT   = flag.Int("alphaT", 0, "max transmitters per slot (0 = keep non-sleeping)")
		alphaR   = flag.Int("alphaR", 0, "max receivers per slot (0 = keep non-sleeping)")
		balanced = flag.Bool("balanced", false, "use the balanced-energy division (§7)")
		format   = flag.String("format", "json", "output format: json | text | grid")
		verify   = flag.Bool("verify", false, "exhaustively verify topology transparency before emitting")
	)
	flag.Parse()

	ns, err := buildBase(*base, *n, *d, *frameLen, *seed)
	if err != nil {
		fatal(err)
	}
	s := ns
	if *alphaT > 0 || *alphaR > 0 {
		if *alphaT <= 0 || *alphaR <= 0 {
			fatal(fmt.Errorf("set both -alphaT and -alphaR (got %d, %d)", *alphaT, *alphaR))
		}
		opts := ttdc.ConstructOptions{AlphaT: *alphaT, AlphaR: *alphaR, D: *d}
		if *balanced {
			opts.Strategy = ttdc.Balanced
		}
		if s, err = ttdc.Construct(ns, opts); err != nil {
			fatal(err)
		}
	}
	if *verify {
		if w := ttdc.CheckRequirement3(s, *d); w != nil {
			fatal(fmt.Errorf("schedule failed verification: %v", w))
		}
		fmt.Fprintf(os.Stderr, "verified: topology-transparent for N(%d, %d)\n", *n, *d)
	}
	switch *format {
	case "json":
		if err := ttdc.EncodeSchedule(os.Stdout, s); err != nil {
			fatal(err)
		}
	case "text":
		fmt.Println(s.String())
		fmt.Printf("frame length %d, active fraction %.3f\n", s.L(), s.ActiveFraction())
	case "grid":
		fmt.Print(s.Grid(80))
		fmt.Printf("frame length %d, active fraction %.3f\n", s.L(), s.ActiveFraction())
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func buildBase(base string, n, d, frameLen int, seed uint64) (*ttdc.Schedule, error) {
	switch base {
	case "tdma":
		return ttdc.TDMA(n)
	case "polynomial":
		return ttdc.PolynomialSchedule(n, d)
	case "steiner":
		if d != 2 {
			return nil, fmt.Errorf("steiner construction supports D = 2 only (got %d)", d)
		}
		return ttdc.SteinerSchedule(n)
	case "projective":
		return ttdc.ProjectiveSchedule(n, d)
	case "search":
		if frameLen == 0 {
			frameLen = n
		}
		return ttdc.SearchSchedule(n, d, frameLen, seed)
	default:
		return nil, fmt.Errorf("unknown base construction %q", base)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ttdcgen:", err)
	os.Exit(1)
}
