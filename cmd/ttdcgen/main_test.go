package main

import (
	"bytes"
	"strings"
	"testing"

	ttdc "repro"
)

func TestRunEmitsDecodableJSON(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-n", "25", "-D", "2", "-alphaT", "3", "-alphaR", "5", "-verify"}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(errb.String(), "verified: topology-transparent for N(25, 2)") {
		t.Fatalf("missing verification note on stderr: %q", errb.String())
	}
	s, err := ttdc.DecodeSchedule(&out)
	if err != nil {
		t.Fatalf("output does not decode: %v", err)
	}
	if s.N() != 25 || !s.IsAlphaSchedule(3, 5) {
		t.Fatalf("decoded schedule n=%d caps ok=%v", s.N(), s.IsAlphaSchedule(3, 5))
	}
}

func TestRunBases(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "9", "-D", "2", "-base", "tdma"},
		{"-n", "9", "-D", "2", "-base", "steiner"},
		{"-n", "9", "-D", "2", "-base", "projective"},
		{"-n", "9", "-D", "2", "-base", "search", "-L", "12"},
	} {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err != nil {
			t.Errorf("run(%v): %v", args, err)
			continue
		}
		if _, err := ttdc.DecodeSchedule(&out); err != nil {
			t.Errorf("run(%v) output does not decode: %v", args, err)
		}
	}
}

func TestRunTextAndGridFormats(t *testing.T) {
	for _, format := range []string{"text", "grid"} {
		var out, errb bytes.Buffer
		if err := run([]string{"-n", "9", "-D", "2", "-format", format}, &out, &errb); err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
		if !strings.Contains(out.String(), "frame length 9, active fraction 1.000") {
			t.Fatalf("format %s output missing summary line:\n%s", format, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-base", "nope"},
		{"-format", "nope"},
		{"-n", "9", "-D", "3", "-base", "steiner"}, // steiner needs D = 2
		{"-alphaT", "3"},                           // αR missing
		{"-not-a-flag"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
