// Command ttdcload is the fleet-serving load generator: it drives a
// ttdcserve tier (real URLs or an in-process ring it spins up itself)
// with a reproducible key mix and reports client-observed hit/miss/304
// counts and latency quantiles as a BENCH_serve.json document.
//
// Usage:
//
//	ttdcload -inproc 3 -requests 12000 -c 16 -o BENCH_serve.json
//	ttdcload -targets http://h0:8080,http://h1:8080 -requests 50000
//
// The key universe is a deterministic duty-point lattice over a few
// network classes; keys are drawn zipf-distributed by default (a fleet
// re-requests its popular classes far more often than its tail) or
// uniformly with -mix uniform. Workers remember the ETag a key last
// returned and revalidate with If-None-Match, so a healthy tier serves a
// measurable share of 304s; half the requests negotiate the binary wire
// format, half JSON. Every worker derives its randomness from -seed, so
// two runs over the same flags issue the identical request sequence.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/schedcache"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/stats"
)

// keyUniverse builds the deterministic request universe: duty points over
// small classes, popularity rank = enumeration order.
func keyUniverse(size int) []schedcache.Key {
	classes := []struct{ n, d int }{{9, 2}, {16, 2}, {25, 2}, {49, 2}, {25, 3}}
	var keys []schedcache.Key
	for _, c := range classes {
		keys = append(keys, schedcache.Key{N: c.n, D: c.d}) // the base point
		for at := 1; at <= 3 && len(keys) < size; at++ {
			for ar := 1; ar <= 4 && len(keys) < size; ar++ {
				for _, s := range []core.DivisionStrategy{core.Sequential, core.Balanced} {
					keys = append(keys, schedcache.Key{N: c.n, D: c.d, AlphaT: at, AlphaR: ar, Strategy: s})
				}
			}
		}
		if len(keys) >= size {
			break
		}
	}
	if len(keys) > size {
		keys = keys[:size]
	}
	return keys
}

// zipfCDF precomputes the cumulative distribution of 1/rank^s over the
// universe (s = 0 degenerates to uniform); sampling is a Float64 draw +
// binary search, so the only randomness source stays stats.RNG.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

// sample draws a universe index: zipf via the CDF, or uniform.
func sample(rng *stats.RNG, cdf []float64) int {
	if cdf == nil {
		panic("nil cdf")
	}
	u := rng.Float64()
	i := sort.SearchFloat64s(cdf, u)
	if i >= len(cdf) {
		i = len(cdf) - 1
	}
	return i
}

// workerResult is one worker's tally, merged after the run.
type workerResult struct {
	latencies []int64 // ns, one per completed request
	hits      int64
	misses    int64
	notMod    int64
	forwarded int64
	wire      int64
	errors    int64
	statuses  map[int]int64
}

// Counts is the client-observed outcome tally in BENCH_serve.json.
type Counts struct {
	Requests    int64 `json:"requests"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	NotModified int64 `json:"notModified"`
	Forwarded   int64 `json:"forwarded"`
	WireBodies  int64 `json:"wireBodies"`
	Errors      int64 `json:"errors"`
}

// Latency is the latency summary in BENCH_serve.json (nanoseconds).
type Latency struct {
	P50Ns  int64   `json:"p50Ns"`
	P90Ns  int64   `json:"p90Ns"`
	P99Ns  int64   `json:"p99Ns"`
	MaxNs  int64   `json:"maxNs"`
	MeanNs float64 `json:"meanNs"`
}

// PeerReport is one peer's server-side counters scraped after the run.
type PeerReport struct {
	Peer           string `json:"peer"`
	Requests       int64  `json:"requests"`
	NotModified    int64  `json:"notModified"`
	CacheHits      int64  `json:"cacheHits"`
	CacheMisses    int64  `json:"cacheMisses"`
	Constructions  int64  `json:"constructions"`
	LoopRejects    int64  `json:"loopRejects"`
	LocalFallbacks int64  `json:"localFallbacks"`
}

// File is the BENCH_serve.json document.
type File struct {
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	NumCPU      int              `json:"numCPU"`
	Peers       int              `json:"peers"`
	Concurrency int              `json:"concurrency"`
	Keys        int              `json:"keys"`
	Mix         string           `json:"mix"`
	Seed        uint64           `json:"seed"`
	DurationNs  int64            `json:"durationNs"`
	Counts      Counts           `json:"counts"`
	Latency     Latency          `json:"latency"`
	Statuses    map[string]int64 `json:"statuses"`
	PeerReports []PeerReport     `json:"peerReports,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ttdcload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ttdcload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		targets  = fs.String("targets", "", "comma-separated ttdcserve base URLs to load")
		inproc   = fs.Int("inproc", 0, "spin up this many in-process peers instead of -targets")
		requests = fs.Int("requests", 10000, "total requests to issue")
		conc     = fs.Int("c", 8, "concurrent workers")
		keys     = fs.Int("keys", 64, "key universe size")
		mix      = fs.String("mix", "zipf", "key mix: zipf or uniform")
		zipfS    = fs.Float64("zipf-s", 1.1, "zipf exponent (mix=zipf)")
		seed     = fs.Uint64("seed", 1, "base RNG seed")
		out      = fs.String("o", "", "output file (empty = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *requests <= 0 || *conc <= 0 || *keys <= 0 {
		return fmt.Errorf("-requests, -c, and -keys must be positive")
	}
	if *mix != "zipf" && *mix != "uniform" {
		return fmt.Errorf("-mix must be zipf or uniform")
	}

	var urls []string
	if *inproc > 0 {
		ring, cleanup, err := startRing(*inproc)
		if err != nil {
			return err
		}
		defer cleanup()
		urls = ring
	} else {
		if *targets == "" {
			return fmt.Errorf("need -targets or -inproc")
		}
		urls = strings.Split(*targets, ",")
	}

	universe := keyUniverse(*keys)
	paths := make([]string, len(universe))
	for i, k := range universe {
		paths[i] = "/schedule?" + k.Canonical()
	}
	var cdf []float64
	if *mix == "zipf" {
		cdf = zipfCDF(len(paths), *zipfS)
	} else {
		cdf = zipfCDF(len(paths), 0) // s=0 degenerates to uniform
	}

	doc := &File{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Peers: len(urls), Concurrency: *conc, Keys: len(paths),
		Mix: *mix, Seed: *seed,
	}

	results := make([]workerResult, *conc)
	per := *requests / *conc
	extra := *requests % *conc
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		count := per
		if w < extra {
			count++
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			results[w] = runWorker(client, urls, paths, cdf, stats.DeriveSeed(*seed, uint64(w)), count, w%2 == 0)
		}(w, count)
	}
	wg.Wait()
	doc.DurationNs = int64(time.Since(start))

	// Merge.
	var all []int64
	doc.Statuses = make(map[string]int64)
	for _, r := range results {
		all = append(all, r.latencies...)
		doc.Counts.Hits += r.hits
		doc.Counts.Misses += r.misses
		doc.Counts.NotModified += r.notMod
		doc.Counts.Forwarded += r.forwarded
		doc.Counts.WireBodies += r.wire
		doc.Counts.Errors += r.errors
		for code, c := range r.statuses {
			doc.Statuses[fmt.Sprintf("%d", code)] += c
		}
	}
	doc.Counts.Requests = int64(len(all)) + doc.Counts.Errors
	doc.Latency = summarize(all)

	for _, u := range urls {
		pr, err := scrapePeer(client, u)
		if err != nil {
			fmt.Fprintf(stderr, "ttdcload: scraping %s: %v\n", u, err)
			continue
		}
		doc.PeerReports = append(doc.PeerReports, pr)
	}

	payload, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	payload = append(payload, '\n')
	if *out == "" {
		_, err = stdout.Write(payload)
		return err
	}
	if err := os.WriteFile(*out, payload, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ttdcload: %d requests, p50=%s p99=%s, %d hits / %d misses / %d 304s -> %s\n",
		doc.Counts.Requests,
		time.Duration(doc.Latency.P50Ns), time.Duration(doc.Latency.P99Ns),
		doc.Counts.Hits, doc.Counts.Misses, doc.Counts.NotModified, *out)
	return nil
}

// startRing boots n in-process peers wired into one consistent-hash ring,
// exactly as the integration tests and `make bench-serve` use it.
func startRing(n int) (urls []string, cleanup func(), err error) {
	type holder struct {
		mu sync.Mutex
		h  http.Handler
	}
	holders := make([]*holder, n)
	servers := make([]*httptest.Server, n)
	for i := range holders {
		hd := &holder{}
		holders[i] = hd
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hd.mu.Lock()
			h := hd.h
			hd.mu.Unlock()
			h.ServeHTTP(w, r)
		}))
		urls = append(urls, servers[i].URL)
	}
	cleanup = func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for i := range holders {
		f, ferr := shard.NewForwarder(shard.Config{Self: urls[i], Peers: urls})
		if ferr != nil {
			cleanup()
			return nil, nil, ferr
		}
		h := serve.NewHandler(serve.NewService(256), serve.Options{Forwarder: f})
		holders[i].mu.Lock()
		holders[i].h = h
		holders[i].mu.Unlock()
	}
	return urls, cleanup, nil
}

// runWorker issues count requests, remembering per-key ETags so repeat
// draws revalidate. wantWire selects the binary representation for this
// worker's requests.
func runWorker(client *http.Client, urls, paths []string, cdf []float64, seed uint64, count int, wantWire bool) workerResult {
	rng := stats.NewRNG(seed)
	res := workerResult{statuses: make(map[int]int64)}
	etags := make(map[int]string, len(paths))
	for i := 0; i < count; i++ {
		ki := sample(rng, cdf)
		entry := urls[rng.Intn(len(urls))]
		req, err := http.NewRequest(http.MethodGet, entry+paths[ki], nil)
		if err != nil {
			res.errors++
			continue
		}
		if wantWire {
			req.Header.Set("Accept", serve.WireContentType)
		}
		if tag := etags[ki]; tag != "" {
			req.Header.Set("If-None-Match", tag)
		}
		t0 := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			res.errors++
			continue
		}
		_, cerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close() //nolint:errcheck // drained above
		if cerr != nil {
			res.errors++
			continue
		}
		res.latencies = append(res.latencies, int64(time.Since(t0)))
		res.statuses[resp.StatusCode]++
		if tag := resp.Header.Get("ETag"); tag != "" {
			etags[ki] = tag
		}
		switch resp.StatusCode {
		case http.StatusOK:
			switch resp.Header.Get(shard.CacheHeader) {
			case "hit":
				res.hits++
			case "miss":
				res.misses++
			}
			if resp.Header.Get("Content-Type") == serve.WireContentType {
				res.wire++
			}
		case http.StatusNotModified:
			res.notMod++
		}
		if sb := resp.Header.Get(shard.ServedByHeader); sb != "" && sb != entry {
			res.forwarded++
		}
	}
	return res
}

// summarize sorts the merged latencies and extracts the quantiles.
func summarize(ns []int64) Latency {
	if len(ns) == 0 {
		return Latency{}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	q := func(p float64) int64 {
		i := int(p * float64(len(ns)-1))
		return ns[i]
	}
	var sum float64
	for _, v := range ns {
		sum += float64(v)
	}
	return Latency{
		P50Ns:  q(0.50),
		P90Ns:  q(0.90),
		P99Ns:  q(0.99),
		MaxNs:  ns[len(ns)-1],
		MeanNs: sum / float64(len(ns)),
	}
}

// scrapePeer pulls the server-side counters that cross-check the client
// tally — in particular loopRejects, which must be zero on a consistent
// ring.
func scrapePeer(client *http.Client, base string) (PeerReport, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return PeerReport{}, err
	}
	defer resp.Body.Close() //nolint:errcheck // test scrape
	var m struct {
		Cache       map[string]int64 `json:"cache"`
		Requests    int64            `json:"requests"`
		NotModified int64            `json:"not_modified"`
		Shard       *shard.Metrics   `json:"shard"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return PeerReport{}, err
	}
	pr := PeerReport{
		Peer:          base,
		Requests:      m.Requests,
		NotModified:   m.NotModified,
		CacheHits:     m.Cache["hits"],
		CacheMisses:   m.Cache["misses"],
		Constructions: m.Cache["constructions"],
	}
	if m.Shard != nil {
		pr.LoopRejects = m.Shard.LoopRejects
		pr.LocalFallbacks = m.Shard.LocalFallbacks
	}
	return pr, nil
}
