package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stats"
)

func TestKeyUniverseDeterministic(t *testing.T) {
	a, b := keyUniverse(64), keyUniverse(64)
	if len(a) != 64 {
		t.Fatalf("universe size %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("universe not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i, k := range a {
		if err := k.Validate(); err != nil {
			t.Fatalf("universe[%d] = %+v invalid: %v", i, k, err)
		}
	}
}

func TestZipfSampling(t *testing.T) {
	cdf := zipfCDF(16, 1.1)
	if cdf[len(cdf)-1] != 1 {
		t.Fatalf("CDF does not end at 1: %v", cdf[len(cdf)-1])
	}
	rng := stats.NewRNG(7)
	counts := make([]int, 16)
	for i := 0; i < 10000; i++ {
		counts[sample(rng, cdf)]++
	}
	// Rank 0 must dominate the tail under zipf.
	if counts[0] <= counts[15] {
		t.Fatalf("zipf head %d <= tail %d", counts[0], counts[15])
	}
	// Uniform (s=0): head and tail within a factor of 2 at 10k draws.
	u := zipfCDF(16, 0)
	rng2 := stats.NewRNG(7)
	ucounts := make([]int, 16)
	for i := 0; i < 10000; i++ {
		ucounts[sample(rng2, u)]++
	}
	if ucounts[0] > 2*ucounts[15] || ucounts[15] > 2*ucounts[0] {
		t.Fatalf("uniform mix skewed: head %d tail %d", ucounts[0], ucounts[15])
	}
	// Same seed, same draws.
	r1, r2 := stats.NewRNG(3), stats.NewRNG(3)
	for i := 0; i < 100; i++ {
		if sample(r1, cdf) != sample(r2, cdf) {
			t.Fatal("sampling not reproducible")
		}
	}
}

func TestSummarize(t *testing.T) {
	if got := summarize(nil); got != (Latency{}) {
		t.Fatalf("empty summarize = %+v", got)
	}
	ns := make([]int64, 100)
	for i := range ns {
		ns[i] = int64(100 - i) // reversed, so summarize must sort
	}
	l := summarize(ns)
	if l.P50Ns != 50 || l.P90Ns != 90 || l.P99Ns != 99 || l.MaxNs != 100 {
		t.Fatalf("quantiles = %+v", l)
	}
	if l.MeanNs != 50.5 {
		t.Fatalf("mean = %v", l.MeanNs)
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-nope"},
		{}, // no targets, no inproc
		{"-inproc", "2", "-requests", "0"},
		{"-inproc", "2", "-mix", "pareto"},
	} {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestLoadAgainstInprocRing is the fleet acceptance run: >=10k requests
// against a 3-peer in-process ring must complete with zero errors, zero
// forwarding loops, measurable 304s, and a well-formed BENCH document.
func TestLoadAgainstInprocRing(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-request integration run")
	}
	outPath := filepath.Join(t.TempDir(), "BENCH_serve.json")
	err := run([]string{
		"-inproc", "3", "-requests", "10000", "-c", "16",
		"-keys", "48", "-seed", "42", "-o", outPath,
	}, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc File
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_serve.json not JSON: %v", err)
	}
	if doc.Counts.Requests < 10000 || doc.Counts.Errors != 0 {
		t.Fatalf("counts = %+v", doc.Counts)
	}
	if doc.Counts.Hits == 0 || doc.Counts.Misses == 0 {
		t.Fatalf("no cache traffic measured: %+v", doc.Counts)
	}
	if doc.Counts.NotModified == 0 {
		t.Fatalf("no 304s measured: %+v", doc.Counts)
	}
	if doc.Counts.Forwarded == 0 {
		t.Fatalf("a 3-peer ring should forward some requests: %+v", doc.Counts)
	}
	if doc.Counts.WireBodies == 0 {
		t.Fatalf("no wire bodies served: %+v", doc.Counts)
	}
	if doc.Latency.P50Ns <= 0 || doc.Latency.P99Ns < doc.Latency.P50Ns {
		t.Fatalf("latency summary = %+v", doc.Latency)
	}
	if doc.GOMAXPROCS <= 0 || doc.NumCPU <= 0 {
		t.Fatalf("header missing CPU info: gomaxprocs=%d numCPU=%d", doc.GOMAXPROCS, doc.NumCPU)
	}
	if len(doc.PeerReports) != 3 {
		t.Fatalf("peer reports = %d, want 3", len(doc.PeerReports))
	}
	var serverRequests, server304 int64
	for _, pr := range doc.PeerReports {
		if pr.LoopRejects != 0 {
			t.Fatalf("peer %s recorded %d forwarding loops", pr.Peer, pr.LoopRejects)
		}
		serverRequests += pr.Requests
		server304 += pr.NotModified
	}
	// Every client request (plus forwarded hops) landed on some peer.
	if serverRequests < doc.Counts.Requests {
		t.Fatalf("servers saw %d requests, clients sent %d", serverRequests, doc.Counts.Requests)
	}
	if server304 < doc.Counts.NotModified {
		t.Fatalf("servers counted %d 304s, clients observed %d", server304, doc.Counts.NotModified)
	}
	// Statuses must be only 200 and 304.
	for code := range doc.Statuses {
		if code != "200" && code != "304" {
			t.Fatalf("unexpected status %s: %v", code, doc.Statuses)
		}
	}
}
