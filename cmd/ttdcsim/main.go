// Command ttdcsim runs the slot-level WSN simulator with a schedule (JSON
// from ttdcgen or built in-process) on a chosen topology, and prints either
// the worst-case saturation report or the convergecast report.
//
// Usage:
//
//	ttdcgen -n 25 -D 2 -alphaT 3 -alphaR 5 | ttdcsim -topo regular -D 2 -mode saturation
//	ttdcsim -gen polynomial -n 25 -D 2 -topo geometric -radius 0.3 -mode convergecast -rate 0.002
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	ttdc "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ttdcsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ttdcsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		gen    = fs.String("gen", "", "build schedule in-process: tdma | polynomial | steiner (default: read JSON from stdin)")
		n      = fs.Int("n", 25, "number of nodes")
		d      = fs.Int("D", 2, "degree bound")
		alphaT = fs.Int("alphaT", 0, "construct (αT, αR)-schedule when both set")
		alphaR = fs.Int("alphaR", 0, "construct (αT, αR)-schedule when both set")
		topo   = fs.String("topo", "regular", "topology: regular | ring | grid | geometric | random")
		radius = fs.Float64("radius", 0.3, "geometric topology radius")
		mode   = fs.String("mode", "saturation", "workload: saturation | convergecast | flood")
		frames = fs.Int("frames", 10, "frames to simulate")
		rate   = fs.Float64("rate", 0.002, "convergecast packets/slot/node")
		sink   = fs.Int("sink", 0, "convergecast sink / flood source node")
		seed   = fs.Uint64("seed", 1, "random seed")
		loss   = fs.Float64("loss", 0, "per-reception erasure probability")
		capt   = fs.Float64("capture", 0, "probability a collision still delivers one packet")
		drift  = fs.Float64("drift", 0, "clock drift bound in ppm (0 = perfect sync)")
		guard  = fs.Float64("guard", 0.1, "guard band as a fraction of the slot")
		resync = fs.Int("resync", 0, "slots between resynchronizations (0 = never)")
		legacy = fs.Bool("legacy", false, "run the slot-by-slot reference loop instead of the fast path")
		shards = fs.Int("shards", 0, "intra-run shards for the fast-path kernels: 0/1 sequential, -1 one per CPU (results identical at every value)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	s, err := loadSchedule(stdin, *gen, *n, *d, *alphaT, *alphaR)
	if err != nil {
		return err
	}
	nodes := s.N()
	if *n < nodes {
		nodes = *n
	}
	g, err := buildTopo(*topo, nodes, *d, *radius, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "schedule: n=%d L=%d active=%.3f | topology: %s, %d nodes, %d edges, maxdeg %d\n",
		s.N(), s.L(), s.ActiveFraction(), *topo, g.N(), g.EdgeCount(), g.MaxDegree())

	channel := ttdc.Channel{LossProb: *loss, CaptureProb: *capt}
	var clock *ttdc.ClockModel
	if *drift > 0 {
		clock = &ttdc.ClockModel{
			MaxDriftPPM: *drift, GuardFraction: *guard, ResyncInterval: *resync, Seed: *seed,
		}
		fmt.Fprintf(stdout, "clock: ±%.0f ppm, guard %.0f%% of slot, resync every %d slots (required <= %d)\n",
			*drift, 100**guard, *resync, ttdc.RequiredResyncInterval(*clock))
	}

	switch *mode {
	case "saturation":
		runSat := func(g *ttdc.Graph, s *ttdc.Schedule, frames int, em ttdc.EnergyModel) (*ttdc.SaturationResult, error) {
			return ttdc.RunSaturationSharded(g, s, frames, em, *shards)
		}
		if *legacy {
			runSat = ttdc.RunSaturationLegacy
		}
		res, err := runSat(g, s, *frames, ttdc.DefaultEnergy())
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "frames=%d  min link/frame=%.3f  avg link/frame=%.3f\n",
			res.Frames, res.MinLinkPerFrame, res.AvgLinkPerFrame)
		fmt.Fprintf(stdout, "min link throughput=%.6f  avg=%.6f  collisions=%d\n",
			res.MinLinkThroughput, res.AvgLinkThroughput, res.CollisionSlots)
		fmt.Fprintf(stdout, "energy=%.4f J  per delivery=%.6f J  active fraction=%.3f\n",
			res.TotalEnergy, res.EnergyPerDelivery, res.ActiveFraction)
	case "convergecast":
		res, err := ttdc.RunConvergecast(g, s, ttdc.ConvergecastConfig{
			Sink: *sink, Rate: *rate, Frames: *frames, Seed: *seed,
			Channel: channel, Clock: clock, Legacy: *legacy, Shards: *shards,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "generated=%d delivered=%d dropped=%d in-flight=%d (delivery ratio %.3f)\n",
			res.Generated, res.Delivered, res.Dropped, res.InFlight, res.DeliveryRatio)
		fmt.Fprintf(stdout, "latency slots: %s\n", res.Latency.String())
		fmt.Fprintf(stdout, "energy=%.4f J  per delivered=%.6f J  active fraction=%.3f  collisions=%d\n",
			res.TotalEnergy, res.EnergyPerDelivered, res.ActiveFraction, res.Collisions)
	case "flood":
		res, err := ttdc.RunFlood(g, ttdc.ScheduleProtocol{S: s}, ttdc.FloodConfig{
			Source: *sink, MaxFrames: *frames, Seed: *seed,
			Channel: channel, Clock: clock,
		})
		if err != nil {
			return err
		}
		completion := "incomplete"
		if res.CompletionSlot >= 0 {
			completion = fmt.Sprintf("slot %d", res.CompletionSlot)
		}
		fmt.Fprintf(stdout, "covered=%d/%d  completion=%s  (analytic bound: %d slots)\n",
			res.Covered, g.N(), completion, (ttdc.Eccentricity(g, *sink)+1)*s.L())
		fmt.Fprintf(stdout, "energy=%.4f J  active fraction=%.3f  collisions=%d\n",
			res.TotalEnergy, res.ActiveFraction, res.Collisions)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}

func loadSchedule(stdin io.Reader, gen string, n, d, alphaT, alphaR int) (*ttdc.Schedule, error) {
	var s *ttdc.Schedule
	var err error
	switch gen {
	case "":
		return ttdc.DecodeSchedule(stdin)
	case "tdma":
		s, err = ttdc.TDMA(n)
	case "polynomial":
		s, err = ttdc.PolynomialSchedule(n, d)
	case "steiner":
		s, err = ttdc.SteinerSchedule(n)
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
	if err != nil {
		return nil, err
	}
	if alphaT > 0 && alphaR > 0 {
		return ttdc.Construct(s, ttdc.ConstructOptions{AlphaT: alphaT, AlphaR: alphaR, D: d})
	}
	return s, nil
}

func buildTopo(kind string, n, d int, radius float64, seed uint64) (*ttdc.Graph, error) {
	rng := ttdc.NewRNG(seed)
	switch kind {
	case "regular":
		return ttdc.Regularish(n, d), nil
	case "ring":
		return ttdc.Ring(n), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return ttdc.Grid(side, side), nil
	case "geometric":
		dep := ttdc.RandomGeometric(n, radius, rng)
		dep.Graph.EnforceMaxDegree(d, rng)
		return dep.Graph, nil
	case "random":
		return ttdc.RandomBoundedDegree(n, d, n/4, rng), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", kind)
	}
}
