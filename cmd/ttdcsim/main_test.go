package main

import (
	"bytes"
	"strings"
	"testing"

	ttdc "repro"
)

func TestRunInProcessModes(t *testing.T) {
	for _, mode := range []string{"saturation", "convergecast", "flood"} {
		t.Run(mode, func(t *testing.T) {
			var out, errOut bytes.Buffer
			err := run([]string{"-gen", "polynomial", "-n", "9", "-D", "2", "-mode", mode, "-frames", "2"},
				strings.NewReader(""), &out, &errOut)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "schedule: n=9") {
				t.Errorf("missing schedule banner:\n%s", out.String())
			}
			if !strings.Contains(out.String(), "active fraction") {
				t.Errorf("missing report body:\n%s", out.String())
			}
		})
	}
}

func TestRunLegacyFlagMatchesFastPath(t *testing.T) {
	for _, mode := range []string{"saturation", "convergecast"} {
		t.Run(mode, func(t *testing.T) {
			var fast, legacy, errOut bytes.Buffer
			base := []string{"-gen", "polynomial", "-n", "9", "-D", "2", "-mode", mode, "-frames", "3", "-rate", "0.1"}
			if err := run(base, strings.NewReader(""), &fast, &errOut); err != nil {
				t.Fatal(err)
			}
			if err := run(append(base, "-legacy"), strings.NewReader(""), &legacy, &errOut); err != nil {
				t.Fatal(err)
			}
			if fast.String() != legacy.String() {
				t.Errorf("fast and legacy reports differ:\nfast:\n%slegacy:\n%s", fast.String(), legacy.String())
			}
		})
	}
}

func TestRunSchedulePipedFromStdin(t *testing.T) {
	s, err := ttdc.TDMA(6)
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if err := ttdc.EncodeSchedule(&wire, s); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if err := run([]string{"-topo", "ring", "-D", "2", "-frames", "2"}, &wire, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "topology: ring") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-gen", "quantum"}, strings.NewReader(""), &out, &errOut); err == nil {
		t.Error("unknown generator accepted")
	}
	if err := run([]string{"-gen", "tdma", "-n", "6", "-mode", "osmosis"}, strings.NewReader(""), &out, &errOut); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-gen", "tdma", "-n", "6", "-topo", "klein-bottle"}, strings.NewReader(""), &out, &errOut); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run(nil, strings.NewReader("not json"), &out, &errOut); err == nil {
		t.Error("garbage stdin accepted")
	}
}
