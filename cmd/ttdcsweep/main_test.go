package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSerialVsParallelIdentical is the sweep's determinism acceptance
// check: the engine-backed parallel run must print byte-identical tables
// to the serial loop.
func TestSerialVsParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite comparison")
	}
	var serial, parallel bytes.Buffer
	if err := run(nil, &serial, os.Stderr); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-parallel", "-workers", "8"}, &parallel, os.Stderr); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Error("parallel sweep output differs from serial")
	}
	if !strings.Contains(serial.String(), "ttdcsweep: 17/17 PASS") {
		t.Errorf("missing summary line; got tail %q", tail(serial.String()))
	}
}

func TestSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E5"}, &out, os.Stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== E5:") || !strings.Contains(out.String(), "[PASS] E5") {
		t.Errorf("unexpected output %q", tail(out.String()))
	}
	if !strings.Contains(out.String(), "ttdcsweep: 1/1 PASS") {
		t.Errorf("missing summary; got tail %q", tail(out.String()))
	}
}

// TestUnknownExperimentContinuesToSummary: an erroring experiment must not
// abort the run pre-summary; it must surface in the final error.
func TestUnknownExperimentContinuesToSummary(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-exp", "E99"}, &out, &errOut)
	if err == nil {
		t.Fatal("unknown experiment reported success")
	}
	if !strings.Contains(err.Error(), "1/1 experiments failed") || !strings.Contains(err.Error(), "E99") {
		t.Errorf("summary error = %v", err)
	}
}

// TestJournalResume runs two experiments with a journal, then reruns: the
// second run must replay from the journal (same output) without
// re-executing.
func TestJournalResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	var first, second bytes.Buffer
	if err := run([]string{"-exp", "E5", "-journal", journal}, &first, os.Stderr); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "E5", "-journal", journal}, &second, os.Stderr); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("journal replay output differs from original run")
	}
}

func tail(s string) string {
	if len(s) > 200 {
		return s[len(s)-200:]
	}
	return s
}
