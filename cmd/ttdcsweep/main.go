// Command ttdcsweep regenerates the reproduction experiments (E1-E11): each
// verifies one paper artifact — Figure 1, the Theorem 2-4 and 7-9
// guarantees, the Requirement 2 ⇔ 3 equivalence — or one of the simulation
// studies the paper motivates, and prints its table.
//
// Usage:
//
//	ttdcsweep                # run everything
//	ttdcsweep -exp E10       # one experiment
//	ttdcsweep -exp E3 -csv   # CSV output
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		exp = flag.String("exp", "", "experiment id (E1..E11); empty = all")
		csv = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()

	ids := experiments.IDs()
	if *exp != "" {
		ids = []string{*exp}
	}
	allPass := true
	for _, id := range ids {
		res, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ttdcsweep:", err)
			os.Exit(1)
		}
		fmt.Printf("== %s: %s ==\n", res.ID, res.Title)
		var werr error
		if *csv {
			werr = res.Table.WriteCSV(os.Stdout)
		} else {
			werr = res.Table.WriteText(os.Stdout)
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "ttdcsweep:", werr)
			os.Exit(1)
		}
		for _, n := range res.Notes {
			fmt.Println(n)
		}
		status := "PASS"
		if !res.Pass {
			status = "FAIL"
			allPass = false
		}
		fmt.Printf("[%s] %s\n\n", status, res.ID)
	}
	if !allPass {
		os.Exit(1)
	}
}
