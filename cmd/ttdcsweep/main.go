// Command ttdcsweep regenerates the reproduction experiments (E1-E17): each
// verifies one paper artifact — Figure 1, the Theorem 2-4 and 7-9
// guarantees, the Requirement 2 ⇔ 3 equivalence — or one of the simulation
// studies the paper motivates, and prints its table.
//
// Every requested experiment runs even when an earlier one fails; a final
// summary lists the failing IDs and the exit status is non-zero only then.
// With -parallel the suite runs through the internal/engine worker pool
// (deterministically: the printed tables are byte-identical to a serial
// run), and -journal checkpoints finished experiments so an interrupted
// sweep resumes where it left off.
//
// Usage:
//
//	ttdcsweep                         # run everything, serially
//	ttdcsweep -exp E10                # one experiment
//	ttdcsweep -exp E3 -csv            # CSV output
//	ttdcsweep -parallel -workers 4    # the suite on 4 engine workers
//	ttdcsweep -parallel -journal s.jsonl  # checkpoint/resume
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ttdcsweep:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ttdcsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "", "experiment id (E1..E17); empty = all")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned text")
		parallel = fs.Bool("parallel", false, "run the suite through the batch engine worker pool")
		workers  = fs.Int("workers", 0, "engine worker count with -parallel (0 = GOMAXPROCS)")
		journal  = fs.String("journal", "", "JSONL journal path: checkpoint finished experiments, resume on rerun (implies -parallel)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ids := experiments.IDs()
	if *exp != "" {
		ids = []string{*exp}
	}

	var failed []string
	if *parallel || *journal != "" {
		var err error
		failed, err = runEngine(ids, *csv, *workers, *journal, stdout, stderr)
		if err != nil {
			return err
		}
	} else {
		failed = runSerial(ids, *csv, stdout, stderr)
	}

	if len(failed) > 0 {
		return fmt.Errorf("%d/%d experiments failed: %s", len(failed), len(ids), strings.Join(failed, ", "))
	}
	fmt.Fprintf(stdout, "ttdcsweep: %d/%d PASS\n", len(ids), len(ids))
	return nil
}

// runSerial runs the experiments one by one in the calling goroutine,
// streaming each table as it finishes. A failing or erroring experiment is
// recorded and the sweep continues.
func runSerial(ids []string, csv bool, stdout, stderr io.Writer) (failed []string) {
	for _, id := range ids {
		res, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintf(stderr, "ttdcsweep: %s: %v\n", id, err)
			failed = append(failed, id)
			continue
		}
		out, err := engine.RenderExperiment(res, csv)
		if err != nil {
			fmt.Fprintf(stderr, "ttdcsweep: %s: %v\n", id, err)
			failed = append(failed, id)
			continue
		}
		fmt.Fprint(stdout, out)
		if !res.Pass {
			failed = append(failed, id)
		}
	}
	return failed
}

// runEngine runs the experiments through the batch engine and prints the
// rendered blocks in experiment order afterwards — the engine's ordered
// journal writer guarantees the output matches a serial run byte for byte.
func runEngine(ids []string, csv bool, workers int, journalPath string, stdout, stderr io.Writer) (failed []string, err error) {
	opts := engine.Options{Workers: workers}
	if journalPath != "" {
		j, jerr := engine.OpenJournal(journalPath)
		if jerr != nil {
			return nil, jerr
		}
		defer j.Close() //nolint:errcheck // flushed on every Append
		opts.Journal = j
	}
	rep, err := engine.New(opts).Run(context.Background(), engine.ExperimentJobs(ids, csv, 1))
	if err != nil {
		return nil, err
	}
	for _, rec := range rep.Records {
		if rec.Status != engine.StatusOK {
			fmt.Fprintf(stderr, "ttdcsweep: %s: %s\n", rec.ID, rec.Error)
			failed = append(failed, rec.ID)
			continue
		}
		var sr engine.SweepResult
		if err := json.Unmarshal(rec.Result, &sr); err != nil {
			return nil, fmt.Errorf("%s: corrupt journal record: %w", rec.ID, err)
		}
		fmt.Fprint(stdout, sr.Output)
		if !sr.Pass {
			failed = append(failed, rec.ID)
		}
	}
	return failed, nil
}
