// Command ttdcanalyze reads a schedule (JSON, as emitted by ttdcgen) from
// stdin or a file and reports its topology-transparency status and exact
// worst-case throughput figures for a given network class N(n, D).
//
// Usage:
//
//	ttdcgen -n 25 -D 2 -alphaT 3 -alphaR 5 | ttdcanalyze -D 2
//	ttdcanalyze -D 2 -in schedule.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	ttdc "repro"
)

func main() {
	var (
		d      = flag.Int("D", 2, "degree bound of the class N(n, D)")
		in     = flag.String("in", "-", "input file (default stdin)")
		skip   = flag.Bool("skip-min", false, "skip the (expensive) minimum-throughput scan")
		report = flag.Bool("report", false, "emit the full analysis report instead of the summary")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	s, err := ttdc.DecodeSchedule(r)
	if err != nil {
		fatal(err)
	}
	if *report {
		out, err := ttdc.Report(s, ttdc.ReportOptions{D: *d, SkipMinThroughput: *skip})
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}
	n := s.N()
	fmt.Printf("schedule: n=%d  L=%d  non-sleeping=%v\n", n, s.L(), s.IsNonSleeping())
	fmt.Printf("per-slot: transmitters %d..%d, receivers <= %d\n",
		s.MinTransmitters(), s.MaxTransmitters(), s.MaxReceivers())
	fmt.Printf("energy:   active fraction %.4f\n", s.ActiveFraction())

	if *d < 1 || *d > n-1 {
		fatal(fmt.Errorf("D = %d outside [1, %d]", *d, n-1))
	}
	if w := ttdc.CheckRequirement3(s, *d); w != nil {
		fmt.Printf("topology-transparent for N(%d, %d): NO — %v\n", n, *d, w)
	} else {
		fmt.Printf("topology-transparent for N(%d, %d): yes\n", n, *d)
	}
	avg := ttdc.AvgThroughput(s, *d)
	fmt.Printf("Thr^ave = %s (%.6f)\n", avg.RatString(), ttdc.RatFloat(avg))
	bound := ttdc.GeneralThroughputBound(n, *d)
	fmt.Printf("Theorem 3 bound Thr★ = %s (%.6f), αT★ = %d\n",
		bound.RatString(), ttdc.RatFloat(bound), ttdc.OptimalTransmitters(n, *d))
	aT, aR := s.MaxTransmitters(), s.MaxReceivers()
	if aT >= 1 && aR >= 1 {
		cb := ttdc.CappedThroughputBound(n, *d, aT, aR)
		fmt.Printf("Theorem 4 bound Thr★(%d,%d) = %s (%.6f)\n", aT, aR, cb.RatString(), ttdc.RatFloat(cb))
	}
	if !*skip {
		min := ttdc.MinThroughput(s, *d)
		fmt.Printf("Thr^min = %s (%.6f)\n", min.RatString(), ttdc.RatFloat(min))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ttdcanalyze:", err)
	os.Exit(1)
}
