// Command ttdcanalyze reads a schedule (JSON, as emitted by ttdcgen) from
// stdin or a file and reports its topology-transparency status and exact
// worst-case throughput figures for a given network class N(n, D).
//
// Usage:
//
//	ttdcgen -n 25 -D 2 -alphaT 3 -alphaR 5 | ttdcanalyze -D 2
//	ttdcanalyze -D 2 -in schedule.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	ttdc "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ttdcanalyze:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ttdcanalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		d      = fs.Int("D", 2, "degree bound of the class N(n, D)")
		in     = fs.String("in", "-", "input file (default stdin)")
		skip   = fs.Bool("skip-min", false, "skip the (expensive) minimum-throughput scan")
		report = fs.Bool("report", false, "emit the full analysis report instead of the summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	s, err := ttdc.DecodeSchedule(r)
	if err != nil {
		return err
	}
	if *report {
		out, err := ttdc.Report(s, ttdc.ReportOptions{D: *d, SkipMinThroughput: *skip})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, out)
		return nil
	}
	n := s.N()
	fmt.Fprintf(stdout, "schedule: n=%d  L=%d  non-sleeping=%v\n", n, s.L(), s.IsNonSleeping())
	fmt.Fprintf(stdout, "per-slot: transmitters %d..%d, receivers <= %d\n",
		s.MinTransmitters(), s.MaxTransmitters(), s.MaxReceivers())
	fmt.Fprintf(stdout, "energy:   active fraction %.4f\n", s.ActiveFraction())

	if *d < 1 || *d > n-1 {
		return fmt.Errorf("D = %d outside [1, %d]", *d, n-1)
	}
	if w := ttdc.CheckRequirement3(s, *d); w != nil {
		fmt.Fprintf(stdout, "topology-transparent for N(%d, %d): NO — %v\n", n, *d, w)
	} else {
		fmt.Fprintf(stdout, "topology-transparent for N(%d, %d): yes\n", n, *d)
	}
	avg := ttdc.AvgThroughput(s, *d)
	fmt.Fprintf(stdout, "Thr^ave = %s (%.6f)\n", avg.RatString(), ttdc.RatFloat(avg))
	bound := ttdc.GeneralThroughputBound(n, *d)
	fmt.Fprintf(stdout, "Theorem 3 bound Thr★ = %s (%.6f), αT★ = %d\n",
		bound.RatString(), ttdc.RatFloat(bound), ttdc.OptimalTransmitters(n, *d))
	aT, aR := s.MaxTransmitters(), s.MaxReceivers()
	if aT >= 1 && aR >= 1 {
		cb := ttdc.CappedThroughputBound(n, *d, aT, aR)
		fmt.Fprintf(stdout, "Theorem 4 bound Thr★(%d,%d) = %s (%.6f)\n", aT, aR, cb.RatString(), ttdc.RatFloat(cb))
	}
	if !*skip {
		min := ttdc.MinThroughput(s, *d)
		fmt.Fprintf(stdout, "Thr^min = %s (%.6f)\n", min.RatString(), ttdc.RatFloat(min))
	}
	return nil
}
