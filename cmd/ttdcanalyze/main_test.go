package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	ttdc "repro"
)

// encode renders a schedule in the ttdcgen wire format.
func encode(t *testing.T, s *ttdc.Schedule) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := ttdc.EncodeSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func dutySchedule(t *testing.T) *ttdc.Schedule {
	t.Helper()
	ns, err := ttdc.PolynomialSchedule(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ttdc.Construct(ns, ttdc.ConstructOptions{AlphaT: 2, AlphaR: 4, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunSummaryFromStdin(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-D", "2"}, encode(t, dutySchedule(t)), &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	text := out.String()
	for _, want := range []string{
		"schedule: n=9",
		"topology-transparent for N(9, 2): yes",
		"Thr^ave = ",
		"Theorem 3 bound",
		"Thr^min = ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
}

func TestRunReportFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "schedule.json")
	if err := os.WriteFile(path, encode(t, dutySchedule(t)).Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-D", "2", "-in", path, "-report", "-skip-min"}, strings.NewReader(""), &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Len() == 0 {
		t.Fatal("report mode produced no output")
	}
}

func TestRunErrors(t *testing.T) {
	sched := encode(t, dutySchedule(t)).String()
	cases := []struct {
		args  []string
		stdin string
	}{
		{[]string{"-D", "2"}, `{broken`},
		{[]string{"-D", "99"}, sched},                         // D out of range for n=9
		{[]string{"-D", "2", "-in", "/nonexistent.json"}, ""}, // unreadable file
		{[]string{"-not-a-flag"}, ""},
	}
	for _, tc := range cases {
		var out, errb bytes.Buffer
		if err := run(tc.args, strings.NewReader(tc.stdin), &out, &errb); err == nil {
			t.Errorf("run(%v) succeeded, want error", tc.args)
		}
	}
}
