package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCampaign(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "campaign.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testDoc = `{"name":"smoke","n":[9,16],"d":[2],"duty":[{"alphaT":2,"alphaR":4}],` +
	`"workload":"saturation","frames":2,"replications":2,"seed":7}`

func TestTableOutputDeterministicAcrossWorkers(t *testing.T) {
	path := writeCampaign(t, testDoc)
	var one, eight bytes.Buffer
	if err := run([]string{"-campaign", path, "-workers", "1"}, &one, os.Stderr); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-campaign", path, "-workers", "8"}, &eight, os.Stderr); err != nil {
		t.Fatal(err)
	}
	if one.String() != eight.String() {
		t.Errorf("workers=8 output differs from workers=1:\n%s\n--- vs ---\n%s", eight.String(), one.String())
	}
	if !strings.Contains(one.String(), "polynomial/n9/D2/aT2-aR4/regular/saturation/r0") {
		t.Errorf("missing job row in %q", one.String())
	}
}

func TestFormats(t *testing.T) {
	path := writeCampaign(t, `{"n":[9],"d":[2],"workload":"analysis"}`)
	var csv, jsonl bytes.Buffer
	if err := run([]string{"-campaign", path, "-format", "csv"}, &csv, os.Stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "job,status,seed") {
		t.Errorf("csv header missing in %q", csv.String())
	}
	if err := run([]string{"-campaign", path, "-format", "jsonl"}, &jsonl, os.Stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"status":"ok"`) || !strings.Contains(jsonl.String(), `"avgThroughput"`) {
		t.Errorf("jsonl record missing fields: %q", jsonl.String())
	}
	if err := run([]string{"-campaign", path, "-format", "yaml"}, &csv, os.Stderr); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestJournalResumeReplays(t *testing.T) {
	path := writeCampaign(t, testDoc)
	journal := filepath.Join(t.TempDir(), "batch.jsonl")
	var first, second bytes.Buffer
	if err := run([]string{"-campaign", path, "-journal", journal}, &first, os.Stderr); err != nil {
		t.Fatal(err)
	}
	var errOut bytes.Buffer
	if err := run([]string{"-campaign", path, "-journal", journal}, &second, &errOut); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("replayed output differs from original")
	}
	if !strings.Contains(errOut.String(), "4 resumed") {
		t.Errorf("expected full resume, got %q", errOut.String())
	}
}

func TestBadCampaignRejected(t *testing.T) {
	path := writeCampaign(t, `{"n":[9],"d":[2],"workload":"teleport"}`)
	var out bytes.Buffer
	if err := run([]string{"-campaign", path}, &out, os.Stderr); err == nil {
		t.Fatal("invalid workload accepted")
	}
	if err := run([]string{"-campaign", filepath.Join(t.TempDir(), "nope.json")}, &out, os.Stderr); err == nil {
		t.Fatal("missing file accepted")
	}
}
