// Command ttdcbatch runs a simulation/analysis campaign — a declarative
// JSON grid over (construction, n, D, αT, αR, topology, workload,
// replications, seed) — through the deterministic parallel batch engine
// and prints the per-job results.
//
// Results are identical whatever -workers is; -journal checkpoints
// finished jobs so a killed campaign resumes exactly where it stopped.
//
// Usage:
//
//	ttdcbatch -campaign sweep.json
//	ttdcbatch -campaign sweep.json -workers 8 -journal sweep.jsonl -progress
//	ttdcbatch -campaign sweep.json -format csv > results.csv
//	echo '{"n":[9,16,25],"d":[2],"workload":"analysis"}' | ttdcbatch
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/schedcache"
	"repro/internal/tablewriter"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ttdcbatch:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ttdcbatch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		campaign = fs.String("campaign", "", `campaign JSON file ("-" or empty = stdin)`)
		workers  = fs.Int("workers", 0, "engine worker count (0 = GOMAXPROCS)")
		journal  = fs.String("journal", "", "JSONL journal path: checkpoint finished jobs, resume on rerun")
		format   = fs.String("format", "table", "output format: table | csv | jsonl")
		progress = fs.Bool("progress", false, "print a live progress line to stderr")
		shards   = fs.Int("shards", 0, "intra-run shards per job kernel: overrides the campaign doc; -1 = one per CPU (results identical at every value)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "table", "csv", "jsonl":
	default:
		return fmt.Errorf("unknown format %q (want table, csv, or jsonl)", *format)
	}

	var in io.Reader = os.Stdin
	if *campaign != "" && *campaign != "-" {
		f, err := os.Open(*campaign)
		if err != nil {
			return err
		}
		defer f.Close() //nolint:errcheck // read-only
		in = f
	}
	c, err := engine.DecodeCampaign(in)
	if err != nil {
		return err
	}
	if *shards != 0 {
		c.Shards = *shards
	}
	// Campaign documents here come from the operator, not the network, so
	// the cache takes TrustedLimits — million-node single-job campaigns
	// are a supported workload, not an attack.
	jobs, err := engine.Jobs(c, schedcache.NewTrusted(0))
	if err != nil {
		return err
	}
	// A campaign that expands to a single job gets no job-level
	// parallelism; move the workers inside the job instead. Sharding
	// cannot change results, so this is purely a scheduling decision.
	if c.Shards == 0 && len(jobs) == 1 && effectiveWorkers(*workers) > 1 {
		c.Shards = -1
		if jobs, err = engine.Jobs(c, schedcache.NewTrusted(0)); err != nil {
			return err
		}
		fmt.Fprintln(stderr, "ttdcbatch: single-job campaign, sharding the run across CPUs (-shards -1)")
	}

	opts := engine.Options{Workers: *workers}
	if *journal != "" {
		j, err := engine.OpenJournal(*journal)
		if err != nil {
			return err
		}
		defer j.Close() //nolint:errcheck // flushed on every Append
		opts.Journal = j
	}
	eng := engine.New(opts)

	if *progress {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(200 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					fmt.Fprintf(stderr, "\r%s\n", eng.Stats().Line())
					return
				case <-tick.C:
					fmt.Fprintf(stderr, "\r%s", eng.Stats().Line())
				}
			}
		}()
	}

	rep, err := eng.Run(context.Background(), jobs)
	if err != nil {
		return err
	}
	if err := emit(stdout, c, rep, *format); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ttdcbatch: %d jobs: %d ok, %d failed, %d resumed in %s\n",
		len(rep.Records), len(rep.Records)-len(rep.FailedIDs()), len(rep.FailedIDs()), rep.Skipped,
		rep.Elapsed.Round(time.Millisecond))
	return nil
}

// effectiveWorkers mirrors engine.New's worker-count resolution.
func effectiveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// emit renders the report. jsonl reprints the journal records verbatim;
// table and csv summarize each job in fixed columns with one
// workload-dependent metric column.
func emit(w io.Writer, c *engine.Campaign, rep *engine.Report, format string) error {
	if format == "jsonl" {
		enc := json.NewEncoder(w)
		for _, rec := range rep.Records {
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
		return nil
	}
	title := "campaign"
	if c.Name != "" {
		title = "campaign " + c.Name
	}
	tbl := tablewriter.New(title, "job", "status", "seed", "L", "active", "metric", "error")
	for _, rec := range rep.Records {
		var l, active, metric any = "-", "-", "-"
		if rec.Status == engine.StatusOK {
			var m engine.Metrics
			if err := json.Unmarshal(rec.Result, &m); err != nil {
				return fmt.Errorf("%s: corrupt record: %w", rec.ID, err)
			}
			l = m.L
			active = fmt.Sprintf("%.3f", m.ActiveFraction)
			metric = metricColumn(&m)
		}
		tbl.AddRow(rec.ID, rec.Status, rec.Seed, l, active, metric, rec.Error)
	}
	if format == "csv" {
		return tbl.WriteCSV(w)
	}
	return tbl.WriteText(w)
}

// metricColumn picks the headline number(s) for the workload that actually
// ran, inferred from which fields the metrics carry.
func metricColumn(m *engine.Metrics) string {
	switch {
	case m.AvgThroughput != "":
		return fmt.Sprintf("thrAve=%.6f", m.AvgThroughputFloat)
	case m.Covered > 0:
		return fmt.Sprintf("covered=%d completion=%d", m.Covered, m.CompletionSlot)
	case m.Generated > 0 || m.Delivered > 0:
		return fmt.Sprintf("delivered=%d/%d ratio=%.3f", m.Delivered, m.Generated, m.DeliveryRatio)
	default:
		return fmt.Sprintf("minLinkThr=%.4f avgLinkThr=%.4f", m.MinLinkThroughput, m.AvgLinkThroughput)
	}
}
