package ttdc_test

import (
	"testing"

	ttdc "repro"
)

func TestTransformFacade(t *testing.T) {
	s, err := ttdc.PolynomialSchedule(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	perm := make([]int, 9)
	for i := range perm {
		perm[i] = (i + 4) % 9
	}
	p, err := ttdc.PermuteNodes(s, perm)
	if err != nil {
		t.Fatal(err)
	}
	if !ttdc.IsTopologyTransparent(p, 2) {
		t.Fatal("permutation broke TT")
	}
	r := ttdc.RotateSlots(s, 3)
	if ttdc.AvgThroughput(r, 2).Cmp(ttdc.AvgThroughput(s, 2)) != 0 {
		t.Fatal("rotation changed throughput")
	}
	c, err := ttdc.Concat(s, r)
	if err != nil {
		t.Fatal(err)
	}
	if c.L() != 2*s.L() {
		t.Fatal("concat length wrong")
	}
	rep, err := ttdc.Repeat(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ttdc.MinThroughput(rep, 2).Cmp(ttdc.MinThroughput(s, 2)) != 0 {
		t.Fatal("repeat changed min throughput")
	}
	res, err := ttdc.Restrict(s, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.N() != 6 || !ttdc.IsTopologyTransparent(res, 2) {
		t.Fatal("restrict broke TT")
	}
}

func TestSearchScheduleFacade(t *testing.T) {
	s, err := ttdc.SearchSchedule(10, 2, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.L() != 10 || s.N() != 10 {
		t.Fatalf("shape %d/%d", s.N(), s.L())
	}
	if !ttdc.IsTopologyTransparent(s, 2) {
		t.Fatal("searched schedule not TT")
	}
	short, err := ttdc.ShortestSearchedSchedule(12, 2, 8, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if short.L() >= 12 {
		t.Fatalf("search should beat TDMA's L=12, got %d", short.L())
	}
	if !ttdc.IsTopologyTransparent(short, 2) {
		t.Fatal("shortest searched schedule not TT")
	}
}

func TestProjectiveScheduleFacade(t *testing.T) {
	// PG(2,5): 31 nodes at degree bound 5 with a 31-slot frame — far
	// shorter than the polynomial construction needs at this D.
	s, err := ttdc.ProjectiveSchedule(31, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.L() != 31 {
		t.Fatalf("L = %d, want 31", s.L())
	}
	if !ttdc.IsTopologyTransparent(s, 5) {
		t.Fatal("projective schedule not TT at D=5")
	}
	poly, err := ttdc.PolynomialSchedule(31, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.L() >= poly.L() {
		t.Fatalf("projective L=%d should beat polynomial L=%d here", s.L(), poly.L())
	}
}

func TestFloodFacade(t *testing.T) {
	g := ttdc.Grid(3, 3)
	s, err := ttdc.TDMA(9)
	if err != nil {
		t.Fatal(err)
	}
	ecc := ttdc.Eccentricity(g, 0)
	res, err := ttdc.RunFlood(g, ttdc.ScheduleProtocol{S: s}, ttdc.FloodConfig{
		Source: 0, MaxFrames: ecc + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered != 9 || res.CompletionSlot < 0 {
		t.Fatalf("flood incomplete: covered %d", res.Covered)
	}
}

func TestContentionBaselinesFacade(t *testing.T) {
	g := ttdc.Star(6)
	res, err := ttdc.RunConvergecastProtocol(g, ttdc.NewAloha(0.3, 1), ttdc.ConvergecastConfig{
		Sink: 0, Rate: 0.05, Frames: 500, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 {
		t.Fatal("nothing generated")
	}
	duty, err := ttdc.RunConvergecastProtocol(g, ttdc.NewDutyAloha(0.1, 0.4, 3), ttdc.ConvergecastConfig{
		Sink: 0, Rate: 0.05, Frames: 500, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if duty.ActiveFraction >= res.ActiveFraction {
		t.Fatal("duty-ALOHA should sleep more than ALOHA")
	}
}

func TestLifetimeFacade(t *testing.T) {
	ns, err := ttdc.PolynomialSchedule(25, 2)
	if err != nil {
		t.Fatal(err)
	}
	duty, err := ttdc.Construct(ns, ttdc.ConstructOptions{AlphaT: 3, AlphaR: 5, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	full, err := ttdc.EstimateLifetime(ns, ttdc.DefaultEnergy(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	cycled, err := ttdc.EstimateLifetime(duty, ttdc.DefaultEnergy(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if cycled.MinSeconds <= full.MinSeconds {
		t.Fatal("duty cycling should extend lifetime")
	}
}

func TestQuorumAndBoundFacade(t *testing.T) {
	q, err := ttdc.NewQuorum(9, 3, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.FrameLen() != 9 {
		t.Fatalf("quorum frame = %d", q.FrameLen())
	}
	if got := ttdc.MinFrameLowerBound(6, 1, 2); got != 18 {
		t.Fatalf("MinFrameLowerBound = %d", got)
	}
	s, err := ttdc.SearchAlphaSchedule(6, 2, 1, 3, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !ttdc.IsTopologyTransparent(s, 2) || !s.IsAlphaSchedule(1, 3) {
		t.Fatal("searched (1,3)-schedule invalid")
	}
	if s.L() != ttdc.MinFrameLowerBound(6, 1, 3) {
		t.Fatalf("searched schedule at L=%d, bound %d", s.L(), ttdc.MinFrameLowerBound(6, 1, 3))
	}
}

func TestParallelFacadeEquivalence(t *testing.T) {
	s, err := ttdc.PolynomialSchedule(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w := ttdc.CheckRequirement3Parallel(s, 3, 0); w != nil {
		t.Fatalf("parallel checker: %v", w)
	}
	seq := ttdc.MinThroughput(s, 3)
	par := ttdc.MinThroughputParallel(s, 3, 4)
	if seq.Cmp(par) != 0 {
		t.Fatalf("parallel min throughput %s != %s", par, seq)
	}
}

func TestLatencyFacade(t *testing.T) {
	s, err := ttdc.TDMA(8)
	if err != nil {
		t.Fatal(err)
	}
	bound, ok := ttdc.WorstCaseHopLatency(s, 3)
	if !ok || bound != 7 {
		t.Fatalf("TDMA latency bound = %d/%v, want 7/true", bound, ok)
	}
	if got := ttdc.HopLatencyBound(s, 0, 1, []int{2, 3}); got != 7 {
		t.Fatalf("per-link bound = %d", got)
	}
}
