// Quickstart: build a topology-transparent schedule, duty-cycle it with the
// paper's Construct algorithm, verify it, and read off the analytical
// guarantees.
package main

import (
	"fmt"
	"log"

	ttdc "repro"
)

func main() {
	// Target network class: at most 25 nodes, degree at most 2 — we do NOT
	// need to know the actual topology, only these bounds.
	const n, d = 25, 2

	// 1. A topology-transparent non-sleeping schedule from the
	//    orthogonal-array (polynomial over GF(q)) cover-free family.
	ns, err := ttdc.PolynomialSchedule(n, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base schedule: frame length %d, everyone awake (active fraction %.2f)\n",
		ns.L(), ns.ActiveFraction())

	// 2. Duty-cycle it: at most 3 transmitters and 5 receivers awake per
	//    slot (17 of 25 radios off in every slot).
	duty, err := ttdc.Construct(ns, ttdc.ConstructOptions{AlphaT: 3, AlphaR: 5, D: d})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("duty-cycled:   frame length %d, active fraction %.2f\n",
		duty.L(), duty.ActiveFraction())

	// 3. Verify topology transparency exhaustively (Requirement 3): every
	//    node reaches every possible neighbour once per frame in EVERY
	//    topology of the class.
	if w := ttdc.CheckRequirement3(duty, d); w != nil {
		log.Fatalf("schedule is not topology-transparent: %v", w)
	}
	fmt.Printf("verified: topology-transparent for N(%d, %d)\n", n, d)

	// 4. Analytical guarantees (exact rationals).
	avg := ttdc.AvgThroughput(duty, d)
	bound := ttdc.CappedThroughputBound(n, d, 3, 5)
	fmt.Printf("average worst-case throughput: %s (Theorem 4 optimum for these caps: %s)\n",
		avg.RatString(), bound.RatString())
	fmt.Printf("minimum worst-case throughput: %s per frame slot\n",
		ttdc.MinThroughput(duty, d).RatString())

	// 5. Run it on a concrete worst-case topology: a 2-regular ring of 25
	//    nodes under saturation.
	g := ttdc.Regularish(n, d)
	res, err := ttdc.RunSaturation(g, duty, 5, ttdc.DefaultEnergy())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated on a %d-regular topology: every link delivered >= %.0f packets/frame, %.1f%% of node-slots awake\n",
		d, res.MinLinkPerFrame, 100*res.ActiveFraction)
}
