// Energy tuning: pick (αT, αR) for a deployment's lifetime target. Sweeps
// the caps, reads the analytical throughput guarantees off Theorems 4/8/9,
// and converts the measured radio energy into an estimated battery lifetime
// for a 2xAA sensor node (≈ 20 kJ usable), showing how the paper's two
// knobs trade lifetime against latency and throughput.
package main

import (
	"fmt"
	"log"
	"os"

	ttdc "repro"
	"repro/internal/tablewriter"
)

func main() {
	const (
		n         = 25
		d         = 2
		batteryJ  = 20000.0 // ~2x AA alkaline usable energy
		slotYears = 365.25 * 24 * 3600
	)
	ns, err := ttdc.PolynomialSchedule(n, d)
	if err != nil {
		log.Fatal(err)
	}
	rng := ttdc.NewRNG(7)
	g := ttdc.RandomBoundedDegree(n, d, 3, rng)

	tab := tablewriter.New("Lifetime vs guarantees (n=25, D=2, CC2420 energy model, 10 ms slots)",
		"αT", "αR", "frame", "awake %", "Thr★ attained", "Thr^min", "est. lifetime (years)", "p50 latency (s)")
	for _, caps := range [][2]int{{5, 20}, {5, 10}, {3, 6}, {2, 4}, {1, 2}} {
		alphaT, alphaR := caps[0], caps[1]
		s, err := ttdc.Construct(ns, ttdc.ConstructOptions{AlphaT: alphaT, AlphaR: alphaR, D: d})
		if err != nil {
			log.Fatal(err)
		}
		// Theorem 8: does this construction attain the Theorem 4 optimum?
		attained := ttdc.OptimalityRatio(s, d, alphaT, alphaR).Cmp(ttdc.RatOne()) == 0

		frames := 30000 / s.L()
		if frames < 2 {
			frames = 2
		}
		res, err := ttdc.RunConvergecast(g, s, ttdc.ConvergecastConfig{
			Sink: 0, Rate: 0.0005, Frames: frames, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		em := ttdc.DefaultEnergy()
		slots := float64(frames * s.L())
		perNodePerSlot := res.TotalEnergy / slots / float64(n)
		lifetimeSec := batteryJ / (perNodePerSlot / em.SlotSeconds)
		tab.AddRow(alphaT, alphaR, s.L(),
			fmt.Sprintf("%.1f", 100*s.ActiveFraction()),
			attained,
			ttdc.MinThroughput(s, d).RatString(),
			fmt.Sprintf("%.2f", lifetimeSec/slotYears),
			fmt.Sprintf("%.1f", res.Latency.Median()*em.SlotSeconds))
	}
	if err := tab.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHalving the awake caps roughly doubles estimated lifetime; Theorems 4/8")
	fmt.Println("say which cap pairs still attain the best achievable average throughput.")
}
