// Data collection: the workload WSN papers motivate — sensor readings
// flowing to a sink over multiple hops. Compares a non-sleeping
// topology-transparent schedule against its duty-cycled construction on the
// same random deployment: the duty-cycled network trades latency for a
// multi-fold cut in energy per delivered reading.
package main

import (
	"fmt"
	"log"
	"os"

	ttdc "repro"
	"repro/internal/tablewriter"
)

func main() {
	const (
		n    = 25
		d    = 3
		seed = 20070326
	)
	rng := ttdc.NewRNG(seed)

	// A random connected sensor deployment with bounded degree.
	g := ttdc.RandomBoundedDegree(n, d, 4, rng)
	fmt.Printf("deployment: %d sensors, %d links, max degree %d (class N(%d, %d))\n\n",
		g.N(), g.EdgeCount(), g.MaxDegree(), n, d)

	ns, err := ttdc.PolynomialSchedule(n, d)
	if err != nil {
		log.Fatal(err)
	}
	configs := []struct {
		name           string
		alphaT, alphaR int
	}{
		{"non-sleeping", 0, 0},
		{"duty (5,10)", 5, 10},
		{"duty (3,6)", 3, 6},
		{"duty (2,4)", 2, 4},
	}
	tab := tablewriter.New("Poisson convergecast to node 0 (rate 0.001 pkt/slot/sensor)",
		"schedule", "frame", "awake %", "delivery %", "p50 latency", "p95 latency", "mJ/reading")
	for _, c := range configs {
		s := ns
		if c.alphaT > 0 {
			if s, err = ttdc.Construct(ns, ttdc.ConstructOptions{
				AlphaT: c.alphaT, AlphaR: c.alphaR, D: d,
			}); err != nil {
				log.Fatal(err)
			}
		}
		frames := 40000 / s.L()
		res, err := ttdc.RunConvergecast(g, s, ttdc.ConvergecastConfig{
			Sink: 0, Rate: 0.001, Frames: frames, WarmupFrames: frames / 10, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(c.name, s.L(),
			fmt.Sprintf("%.1f", 100*s.ActiveFraction()),
			fmt.Sprintf("%.1f", 100*res.DeliveryRatio),
			res.Latency.Median(), res.Latency.Percentile(95),
			fmt.Sprintf("%.2f", 1000*res.EnergyPerDelivered))
	}
	if err := tab.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEvery configuration keeps delivering — the schedules are topology-transparent,")
	fmt.Println("so no link can starve whatever the deployment looks like. Tighter (αT, αR)")
	fmt.Println("caps cut the energy each reading costs, at the price of latency.")
}
