// Dynamic topology: the reason to be topology-transparent. Sensors drift
// (random-waypoint-style steps in the unit square); a schedule built once
// must keep every link alive without re-coordination. The
// topology-transparent duty-cycling schedule never starves a link; the
// topology-DEPENDENT coloring TDMA — optimal for the initial deployment —
// starts failing as soon as nodes move.
package main

import (
	"fmt"
	"log"
	"os"

	ttdc "repro"
	"repro/internal/tablewriter"
)

func main() {
	const (
		n    = 20
		d    = 3
		seed = 42
	)
	rng := ttdc.NewRNG(seed)
	dep := ttdc.RandomGeometric(n, 0.35, rng)
	dep.Graph.EnforceMaxDegree(d, rng)

	// Topology-transparent duty cycling, built with NO topology knowledge.
	ns, err := ttdc.PolynomialSchedule(n, d)
	if err != nil {
		log.Fatal(err)
	}
	tt, err := ttdc.Construct(ns, ttdc.ConstructOptions{AlphaT: 3, AlphaR: 6, D: d})
	if err != nil {
		log.Fatal(err)
	}
	// Topology-dependent coloring TDMA, built from the INITIAL deployment.
	coloring, err := ttdc.ColoringTDMA(dep.Graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedules: TT duty cycling L=%d (%.0f%% awake) vs coloring TDMA L=%d (100%% awake)\n\n",
		tt.L(), 100*tt.ActiveFraction(), coloring.L())

	tab := tablewriter.New("Links starved per mobility step (saturation, 1 frame each)",
		"step", "edges", "TT starved", "TT delivery %", "coloring starved", "coloring delivery %")
	for step := 0; step <= 8; step++ {
		g := dep.Graph.Clone()
		g.EnforceMaxDegree(d, rng)
		ttStarved, ttOK := starved(g, tt)
		colStarved, colOK := starved(g, coloring)
		tab.AddRow(step, g.EdgeCount(), ttStarved,
			fmt.Sprintf("%.0f", 100*ttOK), colStarved, fmt.Sprintf("%.0f", 100*colOK))
		dep.Step(0.12, rng)
	}
	if err := tab.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe TT schedule guarantees a collision-free slot per link per frame in EVERY")
	fmt.Println("degree-<=3 topology, so mobility cannot starve it. The coloring schedule only")
	fmt.Println("promised that for the deployment it saw at build time.")
}

// starved runs one saturation frame and reports (number of starved directed
// links, fraction of links that delivered).
func starved(g *ttdc.Graph, s *ttdc.Schedule) (int, float64) {
	res, err := ttdc.RunSaturation(g, s, 1, ttdc.DefaultEnergy())
	if err != nil {
		log.Fatal(err)
	}
	total, bad := 0, 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			total++
			if res.Delivered[u][v] == 0 {
				bad++
			}
		}
	}
	if total == 0 {
		return 0, 1
	}
	return bad, float64(total-bad) / float64(total)
}
