// Broadcast dissemination: pushing a command or a firmware page from the
// sink to every sensor. A topology-transparent schedule guarantees the
// message frontier advances at least one hop per frame — so dissemination
// finishes within eccentricity-many frames on ANY degree-bounded topology —
// while contention MACs give no such bound and uncoordinated duty cycling
// can stall entirely.
package main

import (
	"fmt"
	"log"
	"os"

	ttdc "repro"
	"repro/internal/tablewriter"
)

func main() {
	const (
		n    = 25
		d    = 3
		seed = 17
	)
	rng := ttdc.NewRNG(seed)
	g := ttdc.RandomBoundedDegree(n, d, 4, rng)
	ecc := ttdc.Eccentricity(g, 0)
	fmt.Printf("deployment: %d sensors, %d links, eccentricity(%d) = %d hops\n\n",
		g.N(), g.EdgeCount(), 0, ecc)

	ns, err := ttdc.PolynomialSchedule(n, d)
	if err != nil {
		log.Fatal(err)
	}
	duty, err := ttdc.Construct(ns, ttdc.ConstructOptions{AlphaT: 4, AlphaR: 8, D: d})
	if err != nil {
		log.Fatal(err)
	}

	protocols := []struct {
		name  string
		proto ttdc.Protocol
		// frames granted, scaled so every protocol gets the same slot
		// budget
		frames int
	}{
		{"TT non-sleeping", ttdc.ScheduleProtocol{S: ns}, 4 * (ecc + 1) * duty.L() / ns.L()},
		{"TT duty (4,8)", ttdc.ScheduleProtocol{S: duty}, 4 * (ecc + 1)},
		{"slotted ALOHA p=0.2", ttdc.NewAloha(0.2, seed), 4 * (ecc + 1) * duty.L()},
		{"duty-ALOHA tx=.1 rx=.3", ttdc.NewDutyAloha(0.1, 0.3, seed), 4 * (ecc + 1) * duty.L()},
	}
	tab := tablewriter.New("Dissemination from node 0 (equal slot budgets)",
		"protocol", "covered", "completion slot", "analytic bound (slots)", "awake %", "energy (J)")
	for _, p := range protocols {
		res, err := ttdc.RunFlood(g, p.proto, ttdc.FloodConfig{Source: 0, MaxFrames: p.frames})
		if err != nil {
			log.Fatal(err)
		}
		bound := "-"
		if sp, ok := p.proto.(ttdc.ScheduleProtocol); ok {
			bound = fmt.Sprintf("%d", (ecc+1)*sp.S.L())
		}
		completion := "incomplete"
		if res.CompletionSlot >= 0 {
			completion = fmt.Sprintf("%d", res.CompletionSlot)
		}
		tab.AddRow(p.name, fmt.Sprintf("%d/%d", res.Covered, n), completion, bound,
			fmt.Sprintf("%.0f", 100*res.ActiveFraction),
			fmt.Sprintf("%.3f", res.TotalEnergy))
	}
	if err := tab.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe schedule-driven floods finish within their analytic bound on every")
	fmt.Println("topology of the class; the duty-cycled one does so with most radios asleep.")
}
