package ttdc_test

import (
	"math/big"
	"testing"

	ttdc "repro"
)

// TestEndToEndPipeline walks the full library surface: construct a TT
// non-sleeping schedule, duty-cycle it, verify requirements, compare
// analysis against bounds, and run both simulator workloads on a concrete
// topology.
func TestEndToEndPipeline(t *testing.T) {
	const n, d = 25, 2
	ns, err := ttdc.PolynomialSchedule(n, d)
	if err != nil {
		t.Fatal(err)
	}
	if !ns.IsNonSleeping() {
		t.Fatal("polynomial schedule should be non-sleeping")
	}
	if w := ttdc.CheckRequirement1(ns, d); w != nil {
		t.Fatalf("non-sleeping schedule violates Req1: %v", w)
	}

	duty, err := ttdc.Construct(ns, ttdc.ConstructOptions{AlphaT: 3, AlphaR: 5, D: d})
	if err != nil {
		t.Fatal(err)
	}
	if !duty.IsAlphaSchedule(3, 5) {
		t.Fatal("construct violated the caps")
	}
	if !ttdc.IsTopologyTransparent(duty, d) {
		t.Fatal("constructed schedule lost topology transparency")
	}
	if duty.ActiveFraction() >= ns.ActiveFraction() {
		t.Fatal("duty cycling did not reduce the active fraction")
	}

	// Analysis stack.
	avg := ttdc.AvgThroughput(duty, d)
	if avg.Cmp(ttdc.CappedThroughputBound(n, d, 3, 5)) > 0 {
		t.Fatal("average throughput above the Theorem 4 bound")
	}
	if avg.Cmp(ttdc.GeneralThroughputBound(n, d)) > 0 {
		t.Fatal("average throughput above the Theorem 3 bound")
	}
	minThr := ttdc.MinThroughput(duty, d)
	if minThr.Sign() <= 0 {
		t.Fatal("TT schedule must have positive minimum throughput")
	}
	if minThr.Cmp(ttdc.Theorem9Bound(ns, d, 3, 5)) < 0 {
		t.Fatal("minimum throughput below the Theorem 9 bound")
	}
	ratio := ttdc.OptimalityRatio(duty, d, 3, 5)
	if ratio.Cmp(ttdc.Theorem8LowerBound(ns, d, 3, 5)) < 0 {
		t.Fatal("optimality ratio below the Theorem 8 bound")
	}

	// Simulation on a worst-case topology inside the class.
	g := ttdc.Regularish(n, d)
	sat, err := ttdc.RunSaturation(g, duty, 2, ttdc.DefaultEnergy())
	if err != nil {
		t.Fatal(err)
	}
	if sat.MinLinkPerFrame < 1 {
		t.Fatalf("a link starved under a TT schedule: %v", sat.MinLinkPerFrame)
	}

	// Convergecast on a random in-class network.
	rng := ttdc.NewRNG(42)
	net := ttdc.RandomBoundedDegree(n, d, 3, rng)
	cc, err := ttdc.RunConvergecast(net, duty, ttdc.ConvergecastConfig{
		Sink: 0, Rate: 0.002, Frames: 60, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cc.Generated > 0 && cc.Delivered == 0 {
		t.Fatal("convergecast delivered nothing")
	}
}

func TestTDMAFacade(t *testing.T) {
	s, err := ttdc.TDMA(8)
	if err != nil {
		t.Fatal(err)
	}
	if s.L() != 8 || s.N() != 8 {
		t.Fatalf("TDMA shape %d/%d", s.N(), s.L())
	}
	if !ttdc.IsTopologyTransparent(s, 7) {
		t.Fatal("TDMA should be TT for D = n-1")
	}
	if got := ttdc.AvgThroughput(s, 3); got.Cmp(big.NewRat(1, 8)) != 0 {
		t.Fatalf("TDMA throughput %s, want 1/8", got)
	}
}

func TestSteinerFacade(t *testing.T) {
	s, err := ttdc.SteinerSchedule(12)
	if err != nil {
		t.Fatal(err)
	}
	if !ttdc.IsTopologyTransparent(s, 2) {
		t.Fatal("Steiner schedule should be TT for D=2")
	}
	// Steiner frames are dramatically shorter than TDMA for the same n.
	if s.L() >= 12 {
		t.Fatalf("Steiner frame %d not shorter than TDMA's 12", s.L())
	}
}

func TestScheduleFromSlotSets(t *testing.T) {
	// Hand-rolled TDMA via slot sets.
	sets := [][]int{{0}, {1}, {2}}
	s, err := ttdc.ScheduleFromSlotSets(3, sets)
	if err != nil {
		t.Fatal(err)
	}
	if !ttdc.IsTopologyTransparent(s, 2) {
		t.Fatal("slot-set TDMA should be TT")
	}
	if _, err := ttdc.ScheduleFromSlotSets(3, [][]int{{5}}); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
}

func TestBaselinesFacade(t *testing.T) {
	g := ttdc.Grid(3, 3)
	col, err := ttdc.ColoringTDMA(g)
	if err != nil {
		t.Fatal(err)
	}
	if col.L() >= g.N() {
		t.Fatal("coloring should beat plain TDMA on a grid")
	}
	rng := ttdc.NewRNG(1)
	rd, err := ttdc.RandomDutyCycle(9, 18, 0.2, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rd.ActiveFraction() >= 1 {
		t.Fatal("random duty cycle should sleep")
	}
	ns, err := ttdc.PolynomialSchedule(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := ttdc.Symmetric(ns, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !sym.IsAlphaSchedule(3, 3) {
		t.Fatal("symmetric caps violated")
	}
}

func TestGuaranteedPerLinkFacade(t *testing.T) {
	g := ttdc.Ring(6)
	s, err := ttdc.TDMA(6)
	if err != nil {
		t.Fatal(err)
	}
	per := ttdc.GuaranteedPerLink(g, s)
	for u := 0; u < 6; u++ {
		for _, v := range g.Neighbors(u) {
			if per[u][v] != 1 {
				t.Fatalf("link %d→%d guarantees %d, want 1", u, v, per[u][v])
			}
		}
	}
}

func TestRatFloat(t *testing.T) {
	if got := ttdc.RatFloat(big.NewRat(1, 4)); got != 0.25 {
		t.Fatalf("RatFloat = %v", got)
	}
}
