// Repository-level benchmark harness: one benchmark per reproduced paper
// artifact (experiments E1-E11; see DESIGN.md §4 and EXPERIMENTS.md). Each
// benchmark regenerates the corresponding table and fails if the paper's
// claim does not hold, so `go test -bench=.` re-validates the full
// reproduction. Micro-benchmarks for the core algorithms follow.
package ttdc_test

import (
	"testing"

	ttdc "repro"
	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Pass {
			b.Fatalf("%s claims failed: %v", id, res.Notes)
		}
	}
}

// BenchmarkE1Figure1 regenerates Figure 1: sleeping preserves per-topology
// throughput on a fixed ring while cutting energy.
func BenchmarkE1Figure1(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2Theorem2 regenerates the Theorem 2 identity table: closed-form
// average worst-case throughput vs the Definition 2 brute force.
func BenchmarkE2Theorem2(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3Theorem3 regenerates the Theorem 3 table: the general upper
// bound Thr★, its loose closed form, and the equality condition.
func BenchmarkE3Theorem3(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4Theorem4 regenerates the Theorem 4 table: (αT, αR) bounds and
// the capped optimum.
func BenchmarkE4Theorem4(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5FrameLength regenerates the Theorem 7 frame-length table.
func BenchmarkE5FrameLength(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Optimality regenerates the Theorem 8 optimality-ratio table.
func BenchmarkE6Optimality(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7MinThroughput regenerates the Theorem 9 minimum-throughput
// table.
func BenchmarkE7MinThroughput(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8Requirements regenerates the Theorem 1 (Req 2 ⇔ Req 3)
// agreement table.
func BenchmarkE8Requirements(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9SimVsAnalysis regenerates the simulation-vs-analysis table on
// worst-case D-regular topologies.
func BenchmarkE9SimVsAnalysis(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10EnergyTradeoff regenerates the (αT, αR) energy/latency/
// throughput trade-off sweep.
func BenchmarkE10EnergyTradeoff(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11Transparency regenerates the topology-churn comparison
// against coloring TDMA and the construction comparison table.
func BenchmarkE11Transparency(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12HopLatency regenerates the worst-case hop-latency table
// (analytic bound vs saturated simulation).
func BenchmarkE12HopLatency(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13BalancedAblation regenerates the §7 division-strategy
// ablation (invariants + per-node energy spread).
func BenchmarkE13BalancedAblation(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14Adaptive regenerates the adaptive-duty-cycling-under-bursty-
// load comparison.
func BenchmarkE14Adaptive(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15Robustness regenerates the erasure/capture/clock-drift
// robustness table.
func BenchmarkE15Robustness(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16Discovery regenerates the neighbour-discovery one-frame
// corollary table.
func BenchmarkE16Discovery(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17FrameOptimality regenerates the Construct frame-length
// optimality table (counting bound + direct search certification).
func BenchmarkE17FrameOptimality(b *testing.B) { benchExperiment(b, "E17") }

// --- Micro-benchmarks for the core algorithms ---

func mustPoly(b *testing.B, n, d int) *ttdc.Schedule {
	b.Helper()
	s, err := ttdc.PolynomialSchedule(n, d)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkConstructAlgorithm measures the Figure 2 algorithm itself on a
// 49-node polynomial base schedule.
func BenchmarkConstructAlgorithm(b *testing.B) {
	ns := mustPoly(b, 49, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ttdc.Construct(ns, ttdc.ConstructOptions{AlphaT: 4, AlphaR: 8, D: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConstructBalanced measures the balanced-energy division variant.
func BenchmarkConstructBalanced(b *testing.B) {
	ns := mustPoly(b, 49, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ttdc.Construct(ns, ttdc.ConstructOptions{
			AlphaT: 4, AlphaR: 8, D: 3, Strategy: ttdc.Balanced,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAvgThroughputClosedForm measures the Theorem 2 closed form
// (Θ(L) big-int work) on a 121-node schedule.
func BenchmarkAvgThroughputClosedForm(b *testing.B) {
	s := mustPoly(b, 121, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ttdc.AvgThroughput(s, 4)
	}
}

// BenchmarkRequirement3Check measures the exhaustive TT verifier on a
// 16-node class (n·C(n-1, D) subset scans).
func BenchmarkRequirement3Check(b *testing.B) {
	s := mustPoly(b, 16, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := ttdc.CheckRequirement3(s, 3); w != nil {
			b.Fatal(w)
		}
	}
}

// BenchmarkMinThroughput measures the Definition 1 minimum-throughput scan.
func BenchmarkMinThroughput(b *testing.B) {
	s := mustPoly(b, 12, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ttdc.MinThroughput(s, 2)
	}
}

// BenchmarkSaturationSimulator measures simulator slot throughput on a
// 49-node worst-case topology (one frame per iteration).
func BenchmarkSaturationSimulator(b *testing.B) {
	s := mustPoly(b, 49, 4)
	g := ttdc.Regularish(49, 4)
	em := ttdc.DefaultEnergy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ttdc.RunSaturation(g, s, 1, em); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvergecastSimulator measures the data-collection workload.
func BenchmarkConvergecastSimulator(b *testing.B) {
	s := mustPoly(b, 25, 2)
	g := ttdc.RandomBoundedDegree(25, 2, 3, ttdc.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ttdc.RunConvergecast(g, s, ttdc.ConvergecastConfig{
			Sink: 0, Rate: 0.002, Frames: 10, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolynomialSchedule measures base-schedule construction end to
// end (field arithmetic + family + schedule assembly).
func BenchmarkPolynomialSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ttdc.PolynomialSchedule(121, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteinerSchedule measures the Steiner-triple-system path.
func BenchmarkSteinerSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ttdc.SteinerSchedule(100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchSchedule measures the randomized cover-free search.
func BenchmarkSearchSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ttdc.SearchSchedule(10, 2, 10, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFloodSimulator measures the dissemination workload under a
// duty-cycled schedule on a 25-node deployment.
func BenchmarkFloodSimulator(b *testing.B) {
	ns := mustPoly(b, 25, 3)
	duty, err := ttdc.Construct(ns, ttdc.ConstructOptions{AlphaT: 4, AlphaR: 8, D: 3})
	if err != nil {
		b.Fatal(err)
	}
	g := ttdc.RandomBoundedDegree(25, 3, 4, ttdc.NewRNG(1))
	ecc := ttdc.Eccentricity(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ttdc.RunFlood(g, ttdc.ScheduleProtocol{S: duty}, ttdc.FloodConfig{
			Source: 0, MaxFrames: ecc + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Covered != 25 {
			b.Fatalf("flood covered %d", res.Covered)
		}
	}
}

// BenchmarkCacheWarmVsCold contrasts a cold schedule construction (GF(q)
// family + Construct, once per iteration through a fresh cache) with a
// warm cache Get for the same repeated key. The warm path is a mutex-
// guarded map lookup and must come out >= 100x faster — that amortization
// is the entire case for serving schedules through ScheduleCache.
func BenchmarkCacheWarmVsCold(b *testing.B) {
	key := ttdc.ScheduleCacheKey{N: 25, D: 2, AlphaT: 3, AlphaR: 5}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := ttdc.NewScheduleCache(8)
			if _, err := c.Get(key); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		c := ttdc.NewScheduleCache(8)
		if _, err := c.Get(key); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Get(key); err != nil {
				b.Fatal(err)
			}
		}
		if c.Stats().Constructions != 1 {
			b.Fatal("warm loop reconstructed the schedule")
		}
	})
}

// BenchmarkWorstCaseHopLatency measures the latency-bound scan.
func BenchmarkWorstCaseHopLatency(b *testing.B) {
	s := mustPoly(b, 12, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ttdc.WorstCaseHopLatency(s, 2); !ok {
			b.Fatal("not TT")
		}
	}
}
