package ttdc

import (
	"encoding/json"
	"fmt"
	"io"
)

// scheduleJSON is the on-disk form of a schedule: per-slot transmitter and
// receiver node lists.
type scheduleJSON struct {
	N int     `json:"n"`
	T [][]int `json:"t"`
	R [][]int `json:"r"`
}

// EncodeSchedule writes s to w as JSON ({"n":..., "t":[[...]], "r":[[...]]}).
func EncodeSchedule(w io.Writer, s *Schedule) error {
	out := scheduleJSON{N: s.N(), T: make([][]int, s.L()), R: make([][]int, s.L())}
	for i := 0; i < s.L(); i++ {
		out.T[i] = s.T(i).Elements()
		out.R[i] = s.R(i).Elements()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// maxDecodedDimension bounds n and L when decoding untrusted input, so a
// hostile document cannot force pathological allocations.
const maxDecodedDimension = 1 << 20

// DecodeSchedule reads a schedule previously written by EncodeSchedule.
func DecodeSchedule(r io.Reader) (*Schedule, error) {
	var in scheduleJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("ttdc: decode schedule: %w", err)
	}
	if in.N < 1 || in.N > maxDecodedDimension {
		return nil, fmt.Errorf("ttdc: decoded n = %d outside [1, %d]", in.N, maxDecodedDimension)
	}
	if len(in.T) > maxDecodedDimension {
		return nil, fmt.Errorf("ttdc: decoded frame length %d exceeds %d", len(in.T), maxDecodedDimension)
	}
	if len(in.R) > maxDecodedDimension {
		return nil, fmt.Errorf("ttdc: decoded receiver slot count %d exceeds %d", len(in.R), maxDecodedDimension)
	}
	s, err := NewSchedule(in.N, in.T, in.R)
	if err != nil {
		return nil, fmt.Errorf("ttdc: decoded schedule invalid: %w", err)
	}
	return s, nil
}
