package ttdc

import (
	"math/big"

	"repro/internal/core"
	"repro/internal/optimize"
	"repro/internal/report"
)

// ReportOptions configures Report; see internal/report.Options.
type ReportOptions = report.Options

// Report renders a complete plain-text analysis of a schedule: TT verdict,
// throughput vs every theorem bound, latency bound, lifetime projection,
// per-node duty and fairness, and (for small frames) the role grid.
func Report(s *Schedule, opts ReportOptions) (string, error) {
	return report.Generate(s, opts)
}

// Exact worst-case throughput analysis (all values are big.Rat; convert
// with RatFloat for display).

// MinThroughput computes Thr^min of Definition 1: the per-frame fraction of
// guaranteed collision-free slots on the worst link with the worst
// neighbourhood in N(n, D). Positive exactly when s is
// topology-transparent.
func MinThroughput(s *Schedule, d int) *big.Rat { return core.MinThroughput(s, d) }

// MinThroughputParallel is MinThroughput distributed over worker
// goroutines (0 = GOMAXPROCS); results are identical to the sequential
// scan.
func MinThroughputParallel(s *Schedule, d, workers int) *big.Rat {
	return core.MinThroughputParallel(s, d, workers)
}

// AvgThroughput computes Thr^ave of Definition 2 via the Theorem 2 closed
// form (Θ(L) cost).
func AvgThroughput(s *Schedule, d int) *big.Rat { return core.AvgThroughput(s, d) }

// AvgThroughputBruteForce computes Thr^ave directly from Definition 2
// (exponential in D; for validation on small instances).
func AvgThroughputBruteForce(s *Schedule, d int) *big.Rat {
	return core.AvgThroughputBruteForce(s, d)
}

// G computes g_{n,D}(x): the average worst-case throughput of a
// non-sleeping schedule with exactly x transmitters per slot.
func G(n, d, x int) *big.Rat { return core.G(n, d, x) }

// OptimalTransmitters returns αT★ of Theorem 3: the per-slot transmitter
// count maximizing average worst-case throughput for general schedules.
func OptimalTransmitters(n, d int) int { return core.OptimalTransmitters(n, d) }

// GeneralThroughputBound returns Thr★ of Theorem 3: the largest average
// worst-case throughput any schedule achieves in N(n, D).
func GeneralThroughputBound(n, d int) *big.Rat { return core.GeneralThroughputBound(n, d) }

// LooseGeneralBound returns the Theorem 3 closed-form relaxation
// nD^D/((n-D)(D+1)^(D+1)).
func LooseGeneralBound(n, d int) *big.Rat { return core.LooseGeneralBound(n, d) }

// OptimalTransmittersCapped returns αT★ = min{αT, α} of Theorem 4.
func OptimalTransmittersCapped(n, d, alphaT int) int {
	return core.OptimalTransmittersCapped(n, d, alphaT)
}

// CappedThroughputBound returns Thr★_{αR,αT} of Theorem 4: the largest
// average worst-case throughput any (αT, αR)-schedule achieves in N(n, D).
func CappedThroughputBound(n, d, alphaT, alphaR int) *big.Rat {
	return core.CappedThroughputBound(n, d, alphaT, alphaR)
}

// LooseCappedBound returns the Theorem 4 closed-form relaxation
// αR(n-1)(D-1)^(D-1)/(n(n-D)D^D).
func LooseCappedBound(n, d, alphaR int) *big.Rat { return core.LooseCappedBound(n, d, alphaR) }

// RatioR computes r(x) of §7, the per-slot optimality ratio of x
// transmitters against αT★.
func RatioR(n, d, alphaT, x int) *big.Rat { return core.RatioR(n, d, alphaT, x) }

// OptimalityRatio returns Thr^ave(s)/Thr★_{αR,αT}.
func OptimalityRatio(s *Schedule, d, alphaT, alphaR int) *big.Rat {
	return core.OptimalityRatio(s, d, alphaT, alphaR)
}

// Theorem8LowerBound returns the paper's lower bound on the optimality
// ratio achieved by Construct on input ns.
func Theorem8LowerBound(ns *Schedule, d, alphaT, alphaR int) *big.Rat {
	return core.Theorem8LowerBound(ns, d, alphaT, alphaR)
}

// Theorem9Bound returns the paper's lower bound on the minimum throughput
// of the schedule Construct builds from ns.
func Theorem9Bound(ns *Schedule, d, alphaT, alphaR int) *big.Rat {
	return core.Theorem9Bound(ns, d, alphaT, alphaR)
}

// MinFrameLowerBound returns the counting lower bound on the frame length
// of any topology-transparent (αT, αR)-schedule over n nodes:
// L >= ⌈n·⌈(n-1)/αR⌉/αT⌉. When Construct's Theorem 7 frame length matches
// it, the paper's construction is frame-optimal for that instance.
func MinFrameLowerBound(n, alphaT, alphaR int) int {
	return core.MinFrameLowerBound(n, alphaT, alphaR)
}

// SearchAlphaSchedule searches directly for a topology-transparent
// (αT, αR)-schedule with frame length exactly l (randomized min-conflicts
// repair; converges reliably for αT = 1 — see internal/optimize).
func SearchAlphaSchedule(n, d, alphaT, alphaR, l int, seed uint64) (*Schedule, error) {
	return optimize.SearchAlpha(optimize.Options{
		N: n, D: d, AlphaT: alphaT, AlphaR: alphaR, L: l, Seed: seed,
	})
}

// ConstructedFrameLength returns the exact Theorem 7 frame length of the
// schedule Construct would build from ns with transmitter subset size
// aStar and receiver cap alphaR.
func ConstructedFrameLength(ns *Schedule, aStar, alphaR int) int {
	return core.ConstructedFrameLength(ns, aStar, alphaR)
}

// FrameLengthCap returns the Theorem 7 closed-form upper bound on the
// constructed frame length.
func FrameLengthCap(ns *Schedule, aStar, alphaR int) int {
	return core.FrameLengthCap(ns, aStar, alphaR)
}

// HopLatencyBound returns the worst-case wait (slots) for a guaranteed
// collision-free slot from x to y when y's other neighbours are S, or -1
// when no guaranteed slot exists.
func HopLatencyBound(s *Schedule, x, y int, set []int) int {
	return core.HopLatencyBound(s, x, y, set)
}

// WorstCaseHopLatency returns the worst-case wait (slots) for a guaranteed
// collision-free slot on any link with any neighbourhood in N(n, D); the
// second result is false when the schedule is not topology-transparent
// (no finite bound). For TT schedules the bound is at most L-1.
func WorstCaseHopLatency(s *Schedule, d int) (int, bool) {
	return core.WorstCaseHopLatency(s, d)
}

// RatFloat converts an exact rational to float64 for display.
func RatFloat(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}

// RatOne returns the exact rational 1 (handy for comparing optimality
// ratios).
func RatOne() *big.Rat { return big.NewRat(1, 1) }
